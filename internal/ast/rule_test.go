package ast

import (
	"reflect"
	"strings"
	"testing"
)

// tcProgram returns the transitive-closure program of Example 1:
//
//	G(x,z) :- A(x,z).
//	G(x,z) :- G(x,y), G(y,z).
func tcProgram() *Program {
	return NewProgram(
		NewRule(atomGxz(), NewAtom("A", Var("x"), Var("z"))),
		NewRule(atomGxz(),
			NewAtom("G", Var("x"), Var("y")),
			NewAtom("G", Var("y"), Var("z"))),
	)
}

func TestRuleString(t *testing.T) {
	r := tcProgram().Rules[1]
	if got := r.String(); got != "G(x, z) :- G(x, y), G(y, z)." {
		t.Fatalf("String = %q", got)
	}
	fact := NewRule(NewAtom("A", IntTerm(1), IntTerm(2)))
	if got := fact.String(); got != "A(1, 2)." {
		t.Fatalf("fact String = %q", got)
	}
}

func TestRuleValidate(t *testing.T) {
	good := tcProgram().Rules[1]
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}

	// Range restriction: head variable not in body (Section II).
	bad := NewRule(NewAtom("G", Var("x"), Var("q")), NewAtom("A", Var("x"), Var("z")))
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "range-restricted") {
		t.Fatalf("range restriction not enforced: %v", err)
	}

	// Empty body with non-ground head: the Anc(x,x):- case the paper rules out.
	anc := NewRule(NewAtom("Anc", Var("x"), Var("x")))
	if err := anc.Validate(); err == nil {
		t.Fatal("empty-body rule with variables accepted")
	}

	// Ground fact rules are fine.
	fact := NewRule(NewAtom("A", IntTerm(1), IntTerm(2)))
	if err := fact.Validate(); err != nil {
		t.Fatalf("ground fact rejected: %v", err)
	}

	// Unsafe negation.
	neg := Rule{
		Head:    NewAtom("P", Var("x")),
		Body:    []Atom{NewAtom("A", Var("x"))},
		NegBody: []Atom{NewAtom("B", Var("w"))},
	}
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe negation not caught: %v", err)
	}

	// Safe negation passes.
	neg.NegBody = []Atom{NewAtom("B", Var("x"))}
	if err := neg.Validate(); err != nil {
		t.Fatalf("safe negation rejected: %v", err)
	}

	// Only negated atoms in the body.
	onlyNeg := Rule{Head: NewAtom("P", IntTerm(1)), NegBody: []Atom{NewAtom("B", IntTerm(1))}}
	if err := onlyNeg.Validate(); err == nil {
		t.Fatal("rule with only negated body accepted")
	}
}

func TestRuleVars(t *testing.T) {
	r := NewRule(
		NewAtom("G", Var("x"), Var("z")),
		NewAtom("G", Var("x"), Var("w"), Var("z")),
		NewAtom("A", Var("w"), Var("y")),
	)
	want := []string{"x", "z", "w", "y"}
	if got := r.Vars(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestWithoutBodyAtom(t *testing.T) {
	// The Example 7 rule; deleting A(w,y) yields the Example 7 minimal rule.
	r := NewRule(
		NewAtom("G", Var("x"), Var("y"), Var("z")),
		NewAtom("G", Var("x"), Var("w"), Var("z")),
		NewAtom("A", Var("w"), Var("y")),
		NewAtom("A", Var("w"), Var("z")),
		NewAtom("A", Var("z"), Var("z")),
		NewAtom("A", Var("z"), Var("y")),
	)
	got := r.WithoutBodyAtom(1)
	if len(got.Body) != 4 {
		t.Fatalf("body length = %d", len(got.Body))
	}
	if got.Body[1].String() != "A(w, z)" {
		t.Fatalf("wrong atom removed: %v", got)
	}
	// Original untouched.
	if len(r.Body) != 5 {
		t.Fatal("WithoutBodyAtom mutated the receiver")
	}
}

func TestRenameApart(t *testing.T) {
	r := tcProgram().Rules[1]
	r1 := r.RenameApart(1)
	r2 := r.RenameApart(2)
	vars1 := make(map[string]bool)
	for _, v := range r1.Vars() {
		vars1[v] = true
	}
	for _, v := range r2.Vars() {
		if vars1[v] {
			t.Fatalf("RenameApart with different tags shares variable %s", v)
		}
	}
}

func TestFreeze(t *testing.T) {
	gen := NewFrozenGen(0)
	r := tcProgram().Rules[1]
	head, body, theta := r.Freeze(gen)
	if len(body) != 2 {
		t.Fatalf("frozen body size = %d", len(body))
	}
	// All frozen constants distinct, and head consistent with theta.
	seen := make(map[Const]bool)
	for _, c := range theta {
		if !IsFrozen(c) {
			t.Fatalf("theta assigned non-frozen constant %v", c)
		}
		if seen[c] {
			t.Fatal("theta is not one-to-one")
		}
		seen[c] = true
	}
	if head.Args[0] != theta["x"] || head.Args[1] != theta["z"] {
		t.Fatalf("frozen head %v inconsistent with theta %v", head, theta)
	}
	if body[0].Args[0] != theta["x"] || body[0].Args[1] != theta["y"] {
		t.Fatalf("frozen body %v inconsistent with theta", body)
	}
}

func TestRuleApplyAndClone(t *testing.T) {
	r := tcProgram().Rules[1]
	s := Subst{"y": IntTerm(9)}
	got := r.Apply(s)
	if got.Body[0].String() != "G(x, 9)" || got.Body[1].String() != "G(9, z)" {
		t.Fatalf("Apply = %v", got)
	}
	c := r.Clone()
	c.Body[0].Args[0] = Var("q")
	if r.Body[0].Args[0].Name != "x" {
		t.Fatal("Clone shares body storage")
	}
}

func TestRuleEqual(t *testing.T) {
	p := tcProgram()
	if !p.Rules[0].Equal(p.Rules[0].Clone()) {
		t.Fatal("rule not equal to its clone")
	}
	if p.Rules[0].Equal(p.Rules[1]) {
		t.Fatal("distinct rules equal")
	}
	neg := p.Rules[0].Clone()
	neg.NegBody = []Atom{NewAtom("B", Var("x"))}
	if p.Rules[0].Equal(neg) {
		t.Fatal("rule equal despite differing NegBody")
	}
}

func TestNegationFormatting(t *testing.T) {
	r := Rule{
		Head:    NewAtom("P", Var("x")),
		Body:    []Atom{NewAtom("A", Var("x"))},
		NegBody: []Atom{NewAtom("B", Var("x"))},
	}
	if got := r.String(); got != "P(x) :- A(x), !B(x)." {
		t.Fatalf("String = %q", got)
	}
	if !r.HasNegation() {
		t.Fatal("HasNegation false")
	}
}
