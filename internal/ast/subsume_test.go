package ast

import "testing"

func mkRule(t *testing.T, head string, body ...string) Rule {
	t.Helper()
	r := Rule{Head: mkAtomS(t, head)}
	for _, b := range body {
		if b[0] == '!' {
			r.NegBody = append(r.NegBody, mkAtomS(t, b[1:]))
		} else {
			r.Body = append(r.Body, mkAtomS(t, b))
		}
	}
	return r
}

// mkAtomS builds atoms without the parser (ast cannot import parser):
// "P x y 3" — upper-case first token is the predicate, lower-case words are
// variables, digits are integer constants.
func mkAtomS(t *testing.T, s string) Atom {
	t.Helper()
	var fields []string
	start := -1
	for i, r := range s {
		if r == ' ' {
			if start >= 0 {
				fields = append(fields, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		fields = append(fields, s[start:])
	}
	if len(fields) == 0 {
		t.Fatalf("empty atom spec %q", s)
	}
	a := Atom{Pred: fields[0]}
	for _, f := range fields[1:] {
		if f[0] >= '0' && f[0] <= '9' {
			var n int64
			for _, c := range f {
				n = n*10 + int64(c-'0')
			}
			a.Args = append(a.Args, IntTerm(n))
		} else {
			a.Args = append(a.Args, Var(f))
		}
	}
	return a
}

func TestSubsumesRule(t *testing.T) {
	cases := []struct {
		name string
		s, r Rule
		want bool
	}{
		{
			"identical",
			mkRule(t, "G x z", "A x z"),
			mkRule(t, "G x z", "A x z"),
			true,
		},
		{
			"alpha-variant",
			mkRule(t, "G u w", "A u w"),
			mkRule(t, "G x z", "A x z"),
			true,
		},
		{
			"general-subsumes-specialization",
			mkRule(t, "G x z", "A x z"),
			mkRule(t, "G x x", "A x x"),
			true,
		},
		{
			"specialization-does-not-subsume-general",
			mkRule(t, "G x x", "A x x"),
			mkRule(t, "G x z", "A x z"),
			false,
		},
		{
			"extra-target-atoms-ok",
			mkRule(t, "G x z", "A x z"),
			mkRule(t, "G x z", "A x z", "B z z"),
			true,
		},
		{
			"missing-target-atom",
			mkRule(t, "G x z", "A x z", "B z z"),
			mkRule(t, "G x z", "A x z"),
			false,
		},
		{
			"repeated-pattern-atoms-map-to-one-target",
			mkRule(t, "G x z", "A x y", "A y z"),
			mkRule(t, "G w w", "A w w"),
			true,
		},
		{
			"head-predicate-differs",
			mkRule(t, "H x z", "A x z"),
			mkRule(t, "G x z", "A x z"),
			false,
		},
		{
			"head-arity-differs",
			mkRule(t, "G x", "A x x"),
			mkRule(t, "G x z", "A x z"),
			false,
		},
		{
			"constant-matches-constant",
			mkRule(t, "G x", "A x 3"),
			mkRule(t, "G y", "A y 3"),
			true,
		},
		{
			"constant-does-not-match-variable",
			mkRule(t, "G x", "A x 3"),
			mkRule(t, "G y", "A y z"),
			false,
		},
		{
			"variable-matches-constant",
			mkRule(t, "G x", "A x w"),
			mkRule(t, "G y", "A y 3"),
			true,
		},
		{
			"backtracking-needed",
			// First A-atom choice A(x,y)→A(a,b) forces y→b, then A(y,z)
			// must match A(b,c); greedy left-to-right with a wrong first
			// pick must recover.
			mkRule(t, "G x z", "A x y", "A y z", "C z"),
			mkRule(t, "G a c", "A a b", "A b c", "C c"),
			true,
		},
		{
			"negated-matches-negated",
			mkRule(t, "G x", "A x", "!B x"),
			mkRule(t, "G y", "A y", "!B y"),
			true,
		},
		{
			"negated-does-not-match-positive",
			mkRule(t, "G x", "A x", "!B x"),
			mkRule(t, "G y", "A y", "B y"),
			false,
		},
		{
			"fewer-negated-atoms-ok",
			mkRule(t, "G x", "A x"),
			mkRule(t, "G y", "A y", "!B y"),
			true,
		},
	}
	for _, tc := range cases {
		if got := SubsumesRule(tc.s, tc.r); got != tc.want {
			t.Errorf("%s: SubsumesRule(%s, %s) = %v, want %v", tc.name, tc.s, tc.r, got, tc.want)
		}
	}
}

func TestSubsumesRuleLeavesArgumentsUntouched(t *testing.T) {
	s := mkRule(t, "G x z", "A x y", "A y z")
	r := mkRule(t, "G a c", "A a b", "A b c")
	sc, rc := s.Clone(), r.Clone()
	if !SubsumesRule(s, r) {
		t.Fatal("expected subsumption")
	}
	if !s.Equal(sc) || !r.Equal(rc) {
		t.Fatal("SubsumesRule mutated its arguments")
	}
}

func TestMatchAtomInto(t *testing.T) {
	theta := make(Subst)
	added, ok := MatchAtomInto(mkAtomS(t, "A x y x"), mkAtomS(t, "A u v u"), theta)
	if !ok || len(added) != 2 {
		t.Fatalf("match failed: added=%v ok=%v", added, ok)
	}
	if !theta["x"].Equal(Var("u")) || !theta["y"].Equal(Var("v")) {
		t.Fatalf("wrong bindings: %v", theta)
	}
	// Repeated pattern variable with conflicting targets fails and leaves
	// theta unchanged.
	before := len(theta)
	if _, ok := MatchAtomInto(mkAtomS(t, "B z z"), mkAtomS(t, "B p q"), theta); ok {
		t.Fatal("conflicting repeated variable matched")
	}
	if len(theta) != before {
		t.Fatal("failed match left bindings behind")
	}
}
