package ast

import (
	"reflect"
	"testing"
)

// exampleTgd is the Section VIII running tgd G(x,z) -> A(x,w).
func exampleTgd() TGD {
	return NewTGD(
		[]Atom{NewAtom("G", Var("x"), Var("z"))},
		[]Atom{NewAtom("A", Var("x"), Var("w"))},
	)
}

func TestTgdQuantifiers(t *testing.T) {
	tau := exampleTgd()
	if got := tau.UniversalVars(); !reflect.DeepEqual(got, []string{"x", "z"}) {
		t.Fatalf("UniversalVars = %v", got)
	}
	if got := tau.ExistentialVars(); !reflect.DeepEqual(got, []string{"w"}) {
		t.Fatalf("ExistentialVars = %v", got)
	}
	if tau.IsFull() {
		t.Fatal("embedded tgd reported full")
	}
}

func TestTgdFullAsRules(t *testing.T) {
	// Example 10: A(x,y,z) ∧ B(w,y,v) → A(x,y,v) ∧ T(w,y,z) is full and
	// equivalent to two rules.
	tau := NewTGD(
		[]Atom{
			NewAtom("A", Var("x"), Var("y"), Var("z")),
			NewAtom("B", Var("w"), Var("y"), Var("v")),
		},
		[]Atom{
			NewAtom("A", Var("x"), Var("y"), Var("v")),
			NewAtom("T", Var("w"), Var("y"), Var("z")),
		},
	)
	if !tau.IsFull() {
		t.Fatal("full tgd reported embedded")
	}
	rules := tau.AsRules()
	if len(rules) != 2 {
		t.Fatalf("AsRules produced %d rules", len(rules))
	}
	if rules[0].Head.Pred != "A" || rules[1].Head.Pred != "T" {
		t.Fatalf("AsRules heads wrong: %v", rules)
	}
	for _, r := range rules {
		if len(r.Body) != 2 {
			t.Fatalf("AsRules body wrong: %v", r)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("AsRules produced invalid rule: %v", err)
		}
	}
}

func TestTgdAsRulesPanicsOnEmbedded(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AsRules on embedded tgd did not panic")
		}
	}()
	exampleTgd().AsRules()
}

func TestTgdValidate(t *testing.T) {
	if err := exampleTgd().Validate(); err != nil {
		t.Fatalf("valid tgd rejected: %v", err)
	}
	if err := (TGD{Rhs: []Atom{NewAtom("A", Var("x"))}}).Validate(); err == nil {
		t.Fatal("empty LHS accepted")
	}
	if err := (TGD{Lhs: []Atom{NewAtom("A", Var("x"))}}).Validate(); err == nil {
		t.Fatal("empty RHS accepted")
	}
}

func TestTgdString(t *testing.T) {
	tau := NewTGD(
		[]Atom{NewAtom("G", Var("y"), Var("z"))},
		[]Atom{NewAtom("G", Var("y"), Var("w")), NewAtom("C", Var("w"))},
	)
	if got := tau.String(); got != "G(y, z) -> G(y, w), C(w)." {
		t.Fatalf("String = %q", got)
	}
}

func TestTgdCloneEqualRename(t *testing.T) {
	tau := exampleTgd()
	u := tau.Clone()
	if !tau.Equal(u) {
		t.Fatal("clone not equal")
	}
	u.Rhs[0].Args[1] = Var("q")
	if tau.Equal(u) || tau.Rhs[0].Args[1].Name != "w" {
		t.Fatal("clone shares storage or equality broken")
	}
	r := tau.Rename(func(v string) string { return v + "1" })
	if got := r.String(); got != "G(x1, z1) -> A(x1, w1)." {
		t.Fatalf("Rename = %q", got)
	}
}
