package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Rule is a Horn-clause rule "Head :- Body." (Section II). NegBody holds
// negated body literals; it is empty for the pure Datalog of the paper and
// is used only by the stratified-negation extension the paper's conclusion
// announces (Section XII). All optimization procedures reject rules with a
// non-empty NegBody. Pos is the source position of the rule (its head atom)
// when parsed from text; the zero value means unknown, and it is ignored by
// Equal and the canonical forms.
type Rule struct {
	Head    Atom
	Body    []Atom
	NegBody []Atom
	Pos     Pos
}

// NewRule builds a rule from a head and positive body atoms.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{Head: head, Body: body}
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Clone()
	}
	var neg []Atom
	if len(r.NegBody) > 0 {
		neg = make([]Atom, len(r.NegBody))
		for i, a := range r.NegBody {
			neg[i] = a.Clone()
		}
	}
	return Rule{Head: r.Head.Clone(), Body: body, NegBody: neg, Pos: r.Pos}
}

// Equal reports whether two rules are syntactically identical (same head,
// same body atoms in the same order).
func (r Rule) Equal(s Rule) bool {
	if !r.Head.Equal(s.Head) || len(r.Body) != len(s.Body) || len(r.NegBody) != len(s.NegBody) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(s.Body[i]) {
			return false
		}
	}
	for i := range r.NegBody {
		if !r.NegBody[i].Equal(s.NegBody[i]) {
			return false
		}
	}
	return true
}

// Vars returns the rule's variables in order of first occurrence (head
// first, then body, then negated body).
func (r Rule) Vars() []string {
	atoms := make([]Atom, 0, 1+len(r.Body)+len(r.NegBody))
	atoms = append(atoms, r.Head)
	atoms = append(atoms, r.Body...)
	atoms = append(atoms, r.NegBody...)
	return VarsOfAtoms(atoms)
}

// Validate checks the paper's well-formedness assumptions: a non-empty body
// unless the head is ground (Section II), range restriction (every head
// variable appears in the positive body), and — for the stratified-negation
// extension — safety of negated atoms (every variable of a negated atom
// appears in the positive body).
func (r Rule) Validate() error {
	if r.Head.Pred == "" {
		return fmt.Errorf("ast: rule with empty head predicate")
	}
	if len(r.Body) == 0 && len(r.NegBody) == 0 && !r.Head.IsGround() {
		return fmt.Errorf("ast: rule %s has an empty body but a non-ground head", r)
	}
	if len(r.Body) == 0 && len(r.NegBody) > 0 {
		return fmt.Errorf("ast: rule %s has only negated body atoms", r)
	}
	bodyVars := make(map[string]bool)
	for _, a := range r.Body {
		a.CollectVars(bodyVars)
	}
	for _, t := range r.Head.Args {
		if t.IsVar && !bodyVars[t.Name] {
			return fmt.Errorf("ast: rule %s is not range-restricted: head variable %s does not appear in the body", r, t.Name)
		}
	}
	for _, a := range r.NegBody {
		for _, t := range a.Args {
			if t.IsVar && !bodyVars[t.Name] {
				return fmt.Errorf("ast: rule %s is unsafe: variable %s of negated atom %s does not appear in the positive body", r, t.Name, a)
			}
		}
	}
	return nil
}

// WellFormed reports whether Validate would accept r, without constructing
// an error. The minimization loops probe many candidate deletions that break
// range restriction; building a rendered error for each rejected candidate
// costs more than the containment tests the loop actually runs.
func (r Rule) WellFormed() bool {
	if r.Head.Pred == "" {
		return false
	}
	if len(r.Body) == 0 && (len(r.NegBody) > 0 || !r.Head.IsGround()) {
		return false
	}
	for _, t := range r.Head.Args {
		if t.IsVar && !r.bodyBinds(t.Name) {
			return false
		}
	}
	for _, a := range r.NegBody {
		for _, t := range a.Args {
			if t.IsVar && !r.bodyBinds(t.Name) {
				return false
			}
		}
	}
	return true
}

// bodyBinds reports whether variable v occurs in the positive body.
func (r Rule) bodyBinds(v string) bool {
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar && t.Name == v {
				return true
			}
		}
	}
	return false
}

// HasNegation reports whether the rule uses the stratified-negation
// extension.
func (r Rule) HasNegation() bool { return len(r.NegBody) > 0 }

// WithoutBodyAtom returns a copy of the rule with positive body atom i
// removed; it is the deletion step of the Fig. 1 minimization algorithm.
func (r Rule) WithoutBodyAtom(i int) Rule {
	body := make([]Atom, 0, len(r.Body)-1)
	body = append(body, r.Body[:i]...)
	body = append(body, r.Body[i+1:]...)
	out := r.Clone()
	out.Body = body
	return out
}

// Apply rewrites the whole rule under a substitution.
func (r Rule) Apply(s Subst) Rule {
	return Rule{
		Head:    r.Head.Apply(s),
		Body:    ApplyAtoms(r.Body, s),
		NegBody: ApplyAtoms(r.NegBody, s),
		Pos:     r.Pos,
	}
}

// Rename rewrites every variable name of the rule through f.
func (r Rule) Rename(f func(string) string) Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Rename(f)
	}
	var neg []Atom
	if len(r.NegBody) > 0 {
		neg = make([]Atom, len(r.NegBody))
		for i, a := range r.NegBody {
			neg[i] = a.Rename(f)
		}
	}
	return Rule{Head: r.Head.Rename(f), Body: body, NegBody: neg, Pos: r.Pos}
}

// RenameApart renames the rule's variables so they are disjoint from any
// rule renamed with a different tag; tags are typically rule indices.
func (r Rule) RenameApart(tag int) Rule {
	suffix := "#" + strconv.Itoa(tag)
	return r.Rename(func(v string) string { return v + suffix })
}

// FreezeVars maps each of the given variables to a distinct fresh frozen
// constant, the substitution θ of Corollary 2.
func FreezeVars(vars []string, gen *ConstGen) Binding {
	b := make(Binding, len(vars))
	for _, v := range vars {
		b[v] = gen.Fresh()
	}
	return b
}

// Freeze instantiates the rule's variables to distinct frozen constants and
// returns the frozen head and body, together with the binding θ used. This
// is the "consider the atoms of b as an input DB" step of Section VI.
func (r Rule) Freeze(gen *ConstGen) (head GroundAtom, body []GroundAtom, theta Binding) {
	theta = FreezeVars(r.Vars(), gen)
	head = r.Head.MustGround(theta)
	body = make([]GroundAtom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.MustGround(theta)
	}
	return head, body, theta
}

// String renders the rule in the paper's notation "H(...) :- B1(...), ...".
func (r Rule) String() string { return r.Format(nil) }

// Format renders the rule, resolving symbolic constants through tab.
func (r Rule) Format(tab *SymbolTable) string {
	var sb strings.Builder
	sb.WriteString(r.Head.Format(tab))
	if len(r.Body) == 0 && len(r.NegBody) == 0 {
		sb.WriteByte('.')
		return sb.String()
	}
	sb.WriteString(" :- ")
	sb.WriteString(FormatAtoms(r.Body, tab))
	for _, a := range r.NegBody {
		sb.WriteString(", !")
		sb.WriteString(a.Format(tab))
	}
	sb.WriteByte('.')
	return sb.String()
}
