package preserve

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/unfold"
)

// Derive returns a session for the program obtained from s by a single-rule
// delta — deleting rule ruleIdx (newRule nil) or replacing it — without
// rebuilding the session from scratch. The Section XI optimizer accepts a
// chain of one-rule weakenings; each acceptance invalidates only the
// derivation trees passing through the changed rule, so the expensive
// per-depth state transfers:
//
//   - the one-step evaluator is delta-patched via eval.Prepared.Derive and
//     registered in the session's plan cache under the new program's content
//     address (a concurrent session deriving the same program hits it);
//   - combination-option tables are shared for every predicate other than
//     the changed rule's head;
//   - depth-k entries are re-derived by patching their unfolding hypergraphs
//     (unfold.Result.Patch) instead of re-unfolding; entries whose patch is
//     refused are dropped and rebuilt lazily on next use.
//
// Deletions transfer too (unfold.Result.PatchDelete re-layers the retained
// hypergraphs with no unification), except when the deleted rule was the
// last one heading its predicate: that shrinks the intentional-predicate
// set the depth-k machinery keys on, so those deltas — like head changes
// and introduced negation — fall back to a fresh session (still through
// the shared plan cache). The receiver is not mutated and both sessions
// stay usable.
func (s *Session) Derive(ruleIdx int, newRule *ast.Rule) (*Session, error) {
	if ruleIdx < 0 || ruleIdx >= len(s.p.Rules) {
		return nil, fmt.Errorf("preserve: Derive: rule index %d out of range (%d rules)", ruleIdx, len(s.p.Rules))
	}
	old := s.p.Rules[ruleIdx]
	if newRule == nil {
		return s.deriveDelete(ruleIdx)
	}
	if err := newRule.Validate(); err != nil {
		return nil, err
	}
	if newRule.Head.Pred != old.Head.Pred || newRule.HasNegation() {
		return s.adopt(NewSessionCache(s.p.ReplaceRule(ruleIdx, *newRule), s.cache))
	}

	np := s.p.ReplaceRule(ruleIdx, *newRule)
	prep, hit, err := s.cache.GetOrBuild(np, eval.Options{}, func() (*eval.Prepared, error) {
		return s.prep.Derive(ruleIdx, newRule)
	})
	if err != nil {
		return nil, err
	}
	s.countPrepare(hit)
	ns := &Session{
		p:       prep.Program(),
		prep:    prep,
		idb:     s.idb, // same head predicate: the intentional set is unchanged
		cache:   s.cache,
		prelim:  make(map[int]*depthEntry),
		partial: make(map[int]*depthEntry),
		stats:   s.stats, // shared: the lineage is one session
	}
	if s.opts != nil {
		ns.opts = transferOptions(s.opts, ns.p, ns.idb, old.Head.Pred)
	}

	// The depth-1 preliminary entry runs the initialization program (rules
	// with extensional bodies only); when neither the old nor the new rule
	// is an initialization rule, that program is untouched by the delta and
	// the entry transfers verbatim.
	if e, ok := s.prelim[1]; ok && s.hasIntentionalBody(old) && s.hasIntentionalBody(*newRule) {
		ns.prelim[1] = e
	}
	for depth, e := range s.prelim {
		if depth <= 1 {
			continue
		}
		if ne, ok := s.patchEntry(e, ruleIdx, *newRule, false); ok {
			ns.prelim[depth] = ne
		}
	}
	for depth, e := range s.partial {
		if ne, ok := s.patchEntry(e, ruleIdx, *newRule, true); ok {
			ns.partial[depth] = ne
		}
	}
	return ns, nil
}

// deriveDelete carries the session across a one-rule deletion: the one-step
// evaluator delta-patches through eval.Prepared.Derive, combination options
// transfer for every predicate but the deleted rule's head, and depth-k
// entries re-layer their unfolding hypergraphs via unfold.Result.PatchDelete
// — the ROADMAP carry-over that previously forced a full session rebuild.
func (s *Session) deriveDelete(ruleIdx int) (*Session, error) {
	old := s.p.Rules[ruleIdx]
	np := s.p.WithoutRule(ruleIdx)
	// Deleting the last rule heading a predicate turns it extensional: the
	// intentional set, and with it the meaning of every depth entry and
	// option table, reshapes. Fall back to a fresh build.
	stillIDB := false
	for i, r := range s.p.Rules {
		if i != ruleIdx && r.Head.Pred == old.Head.Pred {
			stillIDB = true
			break
		}
	}
	if !stillIDB {
		return s.adopt(NewSessionCache(np, s.cache))
	}

	prep, hit, err := s.cache.GetOrBuild(np, eval.Options{}, func() (*eval.Prepared, error) {
		return s.prep.Derive(ruleIdx, nil)
	})
	if err != nil {
		return nil, err
	}
	s.countPrepare(hit)
	ns := &Session{
		p:       prep.Program(),
		prep:    prep,
		idb:     s.idb, // head still intentional: the intentional set is unchanged
		cache:   s.cache,
		prelim:  make(map[int]*depthEntry),
		partial: make(map[int]*depthEntry),
		stats:   s.stats,
	}
	if s.opts != nil {
		ns.opts = transferOptions(s.opts, ns.p, ns.idb, old.Head.Pred)
	}

	// A deleted rule with an intentional body was never part of the
	// initialization program, so the depth-1 preliminary entry transfers.
	if e, ok := s.prelim[1]; ok && s.hasIntentionalBody(old) {
		ns.prelim[1] = e
	}
	for depth, e := range s.prelim {
		if depth <= 1 {
			continue
		}
		if ne, ok := s.patchEntryDelete(e, ruleIdx, false); ok {
			ns.prelim[depth] = ne
		}
	}
	for depth, e := range s.partial {
		if ne, ok := s.patchEntryDelete(e, ruleIdx, true); ok {
			ns.partial[depth] = ne
		}
	}
	return ns, nil
}

// adopt folds a from-scratch fallback session into the receiver's Derive
// lineage: the counters it accumulated while being built (its prepare
// lookup) move into the shared stats block, which the new session then
// shares like a delta-patched one.
func (s *Session) adopt(ns *Session, err error) (*Session, error) {
	if err != nil {
		return nil, err
	}
	s.stats.PrepareHits += ns.stats.PrepareHits
	s.stats.PrepareMisses += ns.stats.PrepareMisses
	ns.stats = s.stats
	return ns, nil
}

// patchEntry carries one depth-k entry across the delta by patching its
// retained unfolding hypergraph. ok=false drops the entry, deferring to a
// lazy from-scratch rebuild on next use — correctness never depends on a
// patch succeeding.
func (s *Session) patchEntry(e *depthEntry, ruleIdx int, newRule ast.Rule, partial bool) (*depthEntry, bool) {
	if !e.res.Patchable() {
		return nil, false
	}
	pres, err := e.res.Patch(ruleIdx, newRule)
	if err != nil {
		return nil, false
	}
	return s.entryFromResult(pres, partial)
}

// patchEntryDelete is patchEntry for a one-rule deletion, carried by
// unfold.Result.PatchDelete.
func (s *Session) patchEntryDelete(e *depthEntry, ruleIdx int, partial bool) (*depthEntry, bool) {
	if !e.res.Patchable() {
		return nil, false
	}
	pres, err := e.res.PatchDelete(ruleIdx)
	if err != nil {
		return nil, false
	}
	return s.entryFromResult(pres, partial)
}

// entryFromResult assembles a depth entry around a patched unfolding.
func (s *Session) entryFromResult(pres unfold.Result, partial bool) (*depthEntry, bool) {
	prep, hit, err := s.cache.PrepareHit(pres.Program, eval.Options{})
	if err != nil {
		return nil, false
	}
	s.countPrepare(hit)
	ne := &depthEntry{prep: prep, complete: pres.Complete, res: pres}
	if partial {
		ne.idb = pres.Program.IDBPredicates()
		ne.opts = combinationOptions(pres.Program, ne.idb)
	} else {
		ne.idb = s.idb
		ne.opts = prelimOptions(pres.Program)
	}
	return ne, true
}

// transferOptions rebuilds the Fig. 3 combination options after a same-head
// one-rule delta: only the changed head predicate's producing-rule list can
// differ, so every other predicate's option slice is shared with the old
// session (options are immutable once built).
func transferOptions(old map[string][]option, np *ast.Program, idb map[string]bool, head string) map[string][]option {
	opts := make(map[string][]option, len(old))
	for pred, os := range old {
		if pred != head {
			opts[pred] = os
		}
	}
	for _, r := range np.Rules {
		if r.Head.Pred == head {
			opts[head] = append(opts[head], option{rule: r})
		}
	}
	if idb[head] {
		opts[head] = append(opts[head], option{trivial: true})
	}
	return opts
}

// hasIntentionalBody reports whether some positive body atom of r is
// intentional in the session program — i.e. whether r is excluded from the
// initialization program Pⁱ.
func (s *Session) hasIntentionalBody(r ast.Rule) bool {
	for _, a := range r.Body {
		if s.idb[a.Pred] {
			return true
		}
	}
	return false
}
