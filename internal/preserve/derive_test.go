package preserve_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/preserve"
	"repro/internal/workload"
)

// deriveTGDs is a fixed pool of candidate tgds over the predicates of
// workload.RandomProgram (binary A/B extensional, P/Q intentional) — the
// same mix of full, embedded and cross-predicate dependencies the
// Section XI optimizer generates.
var deriveTGDs = func() []ast.TGD {
	srcs := []string{
		"P(x, y) -> A(x, w).",
		"P(x, y) -> B(x, y).",
		"A(x, y) -> P(x, y).",
		"P(x, y), B(y, z) -> Q(x, z).",
		"Q(x, y) -> P(x, w).",
		"A(x, y) -> B(y, x).",
	}
	tgds := make([]ast.TGD, len(srcs))
	for i, s := range srcs {
		tgds[i] = parser.MustParseTGD(s)
	}
	return tgds
}()

// weakening picks a random same-head single-atom weakening of some rule of
// p — the delta shape equivopt feeds Session.Derive. ok=false when no rule
// admits one.
func weakening(p *ast.Program, rng *rand.Rand) (int, ast.Rule, bool) {
	for attempt := 0; attempt < 12; attempt++ {
		i := rng.Intn(len(p.Rules))
		r := p.Rules[i]
		if len(r.Body) < 2 {
			continue
		}
		cand := r.WithoutBodyAtom(rng.Intn(len(r.Body)))
		if cand.WellFormed() {
			return i, cand, true
		}
	}
	return 0, ast.Rule{}, false
}

// verdicts probes s with every pooled tgd through both consolidated entry
// points at every depth the optimizer uses, rendering the answers into one
// comparable string. The budget is small so embedded-tgd chases settle on
// Unknown quickly (identically for both sessions under comparison).
func verdicts(t *testing.T, s *preserve.Session, tgds []ast.TGD) string {
	t.Helper()
	budget := chase.Budget{MaxAtoms: 200, MaxRounds: 6}
	out := ""
	for _, tau := range tgds {
		for depth := 1; depth <= 3; depth++ {
			v, _, err := s.Check([]ast.TGD{tau}, preserve.Options{Depth: depth, Budget: budget})
			if err != nil {
				t.Fatalf("Check depth %d: %v", depth, err)
			}
			w, _, err := s.CheckPreliminary([]ast.TGD{tau}, preserve.Options{Depth: depth, Budget: budget})
			if err != nil {
				t.Fatalf("CheckPreliminary depth %d: %v", depth, err)
			}
			out += fmt.Sprintf("%v/%v;", v, w)
		}
	}
	return out
}

// TestDeriveMatchesFreshSession is the oracle property of the tentpole:
// a session carried through a chain of accepted one-rule weakenings by
// Derive answers every preservation question exactly as a session built
// fresh over the final program. The sessions are warmed before each delta
// so the per-depth entries really are patched, not lazily rebuilt.
func TestDeriveMatchesFreshSession(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 2+rng.Intn(3))
		if p.Validate() != nil {
			continue
		}
		s, err := preserve.NewSessionCache(p, eval.NewPlanCache(0))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		verdicts(t, s, deriveTGDs) // warm every depth entry
		cur := p
		for step := 0; step < 3; step++ {
			i, nr, ok := weakening(cur, rng)
			if !ok {
				break
			}
			ns, err := s.Derive(i, &nr)
			if err != nil {
				t.Fatalf("seed %d step %d: Derive: %v", seed, step, err)
			}
			cur = cur.ReplaceRule(i, nr)
			fresh, err := preserve.NewSessionCache(cur, eval.NewPlanCache(0))
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			got := verdicts(t, ns, deriveTGDs)
			want := verdicts(t, fresh, deriveTGDs)
			if got != want {
				t.Fatalf("seed %d step %d: derived session disagrees with fresh\nderived: %s\nfresh:   %s\nprogram:\n%s",
					seed, step, got, want, cur)
			}
			s = ns
		}
	}
}

// TestDeriveLayeredProgram pins the oracle on a multi-stratum shape where
// the changed rule feeds later strata, exercising the cascade re-layering
// inside the patched unfoldings.
func TestDeriveLayeredProgram(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), B(z, z).
		G(x, z) :- G(x, y), G(y, z).
		H(x, z) :- G(x, z), B(x, z).
		H(x, z) :- H(x, y), A(y, z).
	`)
	tgds := []ast.TGD{
		parser.MustParseTGD("G(x, z) -> A(x, w)."),
		parser.MustParseTGD("H(x, z) -> G(x, z)."),
		parser.MustParseTGD("G(x, y), B(y, z) -> H(x, z)."),
	}
	for i := 0; i < len(p.Rules); i++ {
		r := p.Rules[i]
		for k := range r.Body {
			nr := r.WithoutBodyAtom(k)
			if !nr.WellFormed() {
				continue
			}
			s, err := preserve.NewSessionCache(p, eval.NewPlanCache(0))
			if err != nil {
				t.Fatal(err)
			}
			verdicts(t, s, tgds)
			ns, err := s.Derive(i, &nr)
			if err != nil {
				t.Fatalf("rule %d atom %d: %v", i, k, err)
			}
			fresh, err := preserve.NewSessionCache(p.ReplaceRule(i, nr), eval.NewPlanCache(0))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := verdicts(t, ns, tgds), verdicts(t, fresh, tgds); got != want {
				t.Fatalf("rule %d atom %d: derived %s ≠ fresh %s", i, k, got, want)
			}
		}
	}
}

// TestDeriveFallbacks covers the deltas Derive must not patch: deletions
// and head-predicate changes rebuild (through the session's cache), and the
// rebuilt session matches a fresh one.
func TestDeriveFallbacks(t *testing.T) {
	p := parser.MustParseProgram(`
		P(x, y) :- A(x, y).
		P(x, z) :- P(x, y), P(y, z).
		Q(x, y) :- P(x, y), B(x, y).
	`)
	s, err := preserve.NewSessionCache(p, eval.NewPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	verdicts(t, s, deriveTGDs)

	// Deletion: Q loses its only rule, shrinking the intentional set.
	ns, err := s.Derive(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := preserve.NewSessionCache(p.WithoutRule(2), eval.NewPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := verdicts(t, ns, deriveTGDs), verdicts(t, fresh, deriveTGDs); got != want {
		t.Fatalf("deletion: derived %s ≠ fresh %s", got, want)
	}

	// Head change: rule 2 now defines a new predicate.
	hc := parser.MustParseProgram(`R(x, y) :- P(x, y), B(x, y).`).Rules[0]
	ns, err = s.Derive(2, &hc)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err = preserve.NewSessionCache(p.ReplaceRule(2, hc), eval.NewPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := verdicts(t, ns, deriveTGDs), verdicts(t, fresh, deriveTGDs); got != want {
		t.Fatalf("head change: derived %s ≠ fresh %s", got, want)
	}

	// Out-of-range index.
	if _, err := s.Derive(99, nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestDeriveConcurrentSessions runs independent derive chains over one
// shared plan cache — the only state sessions share — so the race detector
// sees the cache's synchronization under concurrent GetOrBuild/Prepare.
func TestDeriveConcurrentSessions(t *testing.T) {
	shared := eval.NewPlanCache(0)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			p := workload.RandomProgram(rng, 2+rng.Intn(3))
			if p.Validate() != nil {
				return
			}
			s, err := preserve.NewSessionCache(p, shared)
			if err != nil {
				errs[g] = err
				return
			}
			budget := chase.Budget{MaxAtoms: 200, MaxRounds: 6}
			cur := p
			for step := 0; step < 3; step++ {
				for depth := 1; depth <= 3; depth++ {
					if _, _, err := s.Check(deriveTGDs[:2], preserve.Options{Depth: depth, Budget: budget}); err != nil {
						errs[g] = err
						return
					}
					if _, _, err := s.CheckPreliminary(deriveTGDs[:2], preserve.Options{Depth: depth, Budget: budget}); err != nil {
						errs[g] = err
						return
					}
				}
				i, nr, ok := weakening(cur, rng)
				if !ok {
					break
				}
				if s, err = s.Derive(i, &nr); err != nil {
					errs[g] = err
					return
				}
				cur = cur.ReplaceRule(i, nr)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// deletable picks a random rule whose head predicate has another rule, so
// deleting it keeps the intentional set — the delta deriveDelete transfers
// rather than rebuilds. ok=false when no rule qualifies.
func deletable(p *ast.Program, rng *rand.Rand) (int, bool) {
	heads := make(map[string]int)
	for _, r := range p.Rules {
		heads[r.Head.Pred]++
	}
	for attempt := 0; attempt < 12; attempt++ {
		i := rng.Intn(len(p.Rules))
		if heads[p.Rules[i].Head.Pred] > 1 {
			return i, true
		}
	}
	return 0, false
}

// TestDeriveDeleteMatchesFreshSession is the deletion half of the Derive
// oracle (the ROADMAP carry-over): a session carried across one-rule
// deletions — alone and interleaved with weakenings — answers every
// preservation question exactly as a session built fresh over the final
// program. The layered fixture keeps every head predicate two-ruled, so
// each deletion takes the transfer path, not the fallback.
func TestDeriveDeleteMatchesFreshSession(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), B(z, z).
		G(x, z) :- G(x, y), G(y, z).
		H(x, z) :- G(x, z), B(x, z).
		H(x, z) :- H(x, y), A(y, z).
	`)
	tgds := []ast.TGD{
		parser.MustParseTGD("G(x, z) -> A(x, w)."),
		parser.MustParseTGD("H(x, z) -> G(x, z)."),
		parser.MustParseTGD("G(x, y), B(y, z) -> H(x, z)."),
	}
	for i := 0; i < len(p.Rules); i++ {
		s, err := preserve.NewSessionCache(p, eval.NewPlanCache(0))
		if err != nil {
			t.Fatal(err)
		}
		verdicts(t, s, tgds) // warm every depth entry so deletion patches, not rebuilds
		ns, err := s.Derive(i, nil)
		if err != nil {
			t.Fatalf("rule %d: %v", i, err)
		}
		fresh, err := preserve.NewSessionCache(p.WithoutRule(i), eval.NewPlanCache(0))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := verdicts(t, ns, tgds), verdicts(t, fresh, tgds); got != want {
			t.Fatalf("rule %d: derived %s ≠ fresh %s", i, got, want)
		}
	}

	// Randomized interleaved chains over generated programs.
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := workload.RandomProgram(rng, 3+rng.Intn(3))
		if q.Validate() != nil {
			continue
		}
		s, err := preserve.NewSessionCache(q, eval.NewPlanCache(0))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		verdicts(t, s, deriveTGDs)
		cur := q
		for step := 0; step < 3 && len(cur.Rules) > 2; step++ {
			var ns *preserve.Session
			if step%2 == 0 {
				i, ok := deletable(cur, rng)
				if !ok {
					break
				}
				ns, err = s.Derive(i, nil)
				if err != nil {
					t.Fatalf("seed %d step %d: delete: %v", seed, step, err)
				}
				cur = cur.WithoutRule(i)
			} else {
				i, nr, ok := weakening(cur, rng)
				if !ok {
					break
				}
				ns, err = s.Derive(i, &nr)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				cur = cur.ReplaceRule(i, nr)
			}
			fresh, err := preserve.NewSessionCache(cur, eval.NewPlanCache(0))
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			got := verdicts(t, ns, deriveTGDs)
			want := verdicts(t, fresh, deriveTGDs)
			if got != want {
				t.Fatalf("seed %d step %d: derived session disagrees with fresh\nderived: %s\nfresh:   %s\nprogram:\n%s",
					seed, step, got, want, cur)
			}
			s = ns
		}
	}
}
