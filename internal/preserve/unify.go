// Package preserve implements Section IX of the paper: the chase-style
// procedure of Fig. 3 (after Klug and Price) for testing that a program P
// preserves a set T of tgds non-recursively — i.e. ⟨d, Pⁿ(d)⟩ ∈ SAT(T) for
// every d ∈ SAT(T) — and the Section X variant (condition 3′) testing that
// the preliminary DB of P satisfies T for every EDB.
//
// One refinement over the paper's informal presentation: the paper
// instantiates the tgd's left-hand side to *distinct* constants and then
// unifies those ground atoms with rule heads, treating a failed unification
// as an impossible combination. With a rule head containing repeated
// variables (e.g. G(z, z) :- B(z)) that would be unsound: the distinct
// constants fail to unify even though collapsed instances exist. This
// implementation therefore unifies at the term level (computing a most
// general unifier that may identify left-hand-side variables) and freezes
// only the variables that remain — the canonical-DB homomorphism argument
// in the paper's appendix is exactly the soundness proof for this variant.
package preserve

import "repro/internal/ast"

// newUnifier returns the shared mgu engine from the ast package; see the
// package comment for why mgu-level unification (rather than the paper's
// ground instantiation) is needed for soundness.
func newUnifier() *ast.Unifier { return ast.NewUnifier() }
