package preserve

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/parser"
)

func TestCounterexampleString(t *testing.T) {
	p := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z).`)
	v, cex, err := Check(p, tgds("G(x, y) -> A(x, y)."), Options{})
	if err != nil || v != chase.No || cex == nil {
		t.Fatalf("setup: %v %v %v", v, cex, err)
	}
	s := cex.String()
	if !strings.Contains(s, "violated on") || !strings.Contains(s, "G(") {
		t.Fatalf("Counterexample.String: %q", s)
	}
	fv := &foundViolation{cex}
	if fv.Error() == "" {
		t.Fatal("foundViolation.Error empty")
	}
}

// The in-package depth tests complement the cross-package ones in
// internal/unfold (which exercise the same entry points but cannot count
// toward this package's own regression suite).
func TestDepthEntryPointsInPackage(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		H(x) :- G(x, y).
	`)
	tau := parser.MustParseTGD("G(x, z) -> H(x).")
	v, _, err := CheckPreliminary(p, tgds("G(x, z) -> H(x)."), Options{Depth: 2})
	if err != nil || v != chase.Yes {
		t.Fatalf("PreliminarySatisfiesAtDepth: %v %v", v, err)
	}
	v, _, err = Check(p, tgds("G(x, z) -> H(x)."), Options{Depth: 2})
	if err != nil || v != chase.Yes {
		t.Fatalf("Check at depth: %v %v", v, err)
	}
	_ = tau
	// Negation rejection on the depth paths.
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, _, err := CheckPreliminary(neg, tgds("P(x) -> A(x)."), Options{Depth: 2}); err == nil {
		t.Fatal("negation accepted at depth")
	}
	if _, _, err := Check(neg, tgds("P(x) -> A(x)."), Options{Depth: 2}); err == nil {
		t.Fatal("negation accepted at depth")
	}
}
