package preserve

import (
	"context"
	"fmt"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/unfold"
)

// Counterexample describes a refutation found by the Fig. 3 procedure: a DB
// d (satisfying T up to the point the chase stopped) whose one-step closure
// ⟨d, Pⁿ(d)⟩ violates the tgd on the recorded left-hand-side instance.
type Counterexample struct {
	TGD ast.TGD
	// DB is the constructed database d.
	DB *db.Database
	// LHS is the instantiated left-hand side exhibiting the violation.
	LHS []ast.GroundAtom
}

// String renders the counterexample for diagnostics.
func (c *Counterexample) String() string {
	return fmt.Sprintf("tgd %s violated on %v over\n%s", c.TGD, c.LHS, c.DB)
}

// Session holds one program prepared for repeated Fig. 3 / Section X
// preservation checks. The prepared one-step evaluator Pⁿ, the per-depth
// unfoldings, and the per-depth combination options are all computed once
// and reused across tgds and candidate probes — the Section XI optimizer
// asks the same program about many candidate tgds at many depths. When the
// optimizer accepts a candidate (a one-rule weakening), Derive patches the
// session across the delta instead of rebuilding it.
//
// A Session is not safe for concurrent use.
type Session struct {
	p     *ast.Program
	prep  *eval.Prepared
	idb   map[string]bool
	cache *eval.PlanCache
	opts  map[string][]option // combinationOptions(p, idb), lazily built

	prelim  map[int]*depthEntry // CheckPreliminary entries, by depth
	partial map[int]*depthEntry // Check (depth ≥ 2) entries, by depth

	// stats is shared across the whole Derive lineage (one session, many
	// derived variants), mirroring chase.Checker: plan-cache hits/misses
	// observed preparing the base program and depth entries, plus the chase
	// rounds run and facts derived by combination checks.
	stats *eval.Stats
}

// depthEntry is one prepared depth-k variant: the (unfolded or
// initialization) program, its prepared evaluator, the idb/option tables
// the combination walk needs, and whether the unfolding was complete. For
// depth ≥ 2 entries res retains the unfolding's derivation hypergraph, so
// Derive can patch the entry across a one-rule delta.
type depthEntry struct {
	prep     *eval.Prepared
	idb      map[string]bool
	opts     map[string][]option
	complete bool
	res      unfold.Result
}

// NewSession prepares p for preservation checks through the process-wide
// plan cache. Programs using negation are rejected (the Fig. 3 procedure is
// defined for pure Datalog).
func NewSession(p *ast.Program) (*Session, error) {
	return NewSessionCache(p, nil)
}

// NewSessionCache is NewSession with an injectable plan cache (nil selects
// eval.DefaultPlanCache) — tests and the harness isolate their cache
// footprints; servers can shard caches per tenant.
func NewSessionCache(p *ast.Program, cache *eval.PlanCache) (*Session, error) {
	if p.HasNegation() {
		return nil, fmt.Errorf("preserve: pure Datalog required")
	}
	if cache == nil {
		cache = eval.DefaultPlanCache
	}
	prep, hit, err := cache.PrepareHit(p, eval.Options{})
	if err != nil {
		return nil, err
	}
	s := &Session{
		p:       prep.Program(),
		prep:    prep,
		idb:     p.IDBPredicates(),
		cache:   cache,
		prelim:  make(map[int]*depthEntry),
		partial: make(map[int]*depthEntry),
		stats:   &eval.Stats{},
	}
	s.countPrepare(hit)
	return s, nil
}

// countPrepare records one plan-cache lookup made on the session's behalf.
func (s *Session) countPrepare(hit bool) {
	if hit {
		s.stats.PrepareHits++
	} else {
		s.stats.PrepareMisses++
	}
}

// Stats reports the session's accumulated counters: plan-cache lookups made
// preparing the program and its depth-k variants, and the chase rounds and
// derived facts of every combination check. Derived Sessions share their
// parent's counters, so the totals describe the whole session lineage. Not
// safe to call concurrently with a running check.
func (s *Session) Stats() eval.Stats { return *s.stats }

// Program returns the session's program.
func (s *Session) Program() *ast.Program { return s.p }

// combOpts lazily builds the Fig. 3 combination options for the session
// program: per intentional predicate, the producing rules plus the trivial
// "already in d" option.
func (s *Session) combOpts() map[string][]option {
	if s.opts == nil {
		s.opts = combinationOptions(s.p, s.idb)
	}
	return s.opts
}

// Options configures one preservation check — the consolidated form of the
// former NonRecursively/…AtDepth entry-point pairs.
type Options struct {
	// Depth selects the k-round generalization of Section X's closing
	// remark: the check runs against the depth-k unfolding of the program
	// (k-round blocks for Check, the depth-k preliminary DB for
	// CheckPreliminary). Depth ≤ 1 is the plain Fig. 3 / initialization-
	// rules procedure.
	Depth int
	// Budget bounds each internal chase; zero fields take
	// chase.DefaultBudget.
	Budget chase.Budget
	// Context, when non-nil, cancels the check: it is observed between
	// tgds and between LHS combinations, so a deadline aborts the
	// combination walk promptly with an error wrapping eval.ErrCanceled.
	// Cancellation never publishes a partial verdict.
	Context context.Context
}

// Check runs the Fig. 3 procedure: it decides whether p preserves T
// non-recursively, i.e. whether ⟨d, Pⁿ(d)⟩ satisfies T for every DB d
// satisfying T — at opts.Depth > 1, whether every k-round block does, via
// the partial unfolding Q with Qⁿ(d) = k rounds of P. Yes answers are
// exact. No answers come with a finite counterexample and are exact at
// depth ≤ 1; at greater depths a truncated unfolding demotes No to Unknown
// (the violation may be an artifact of the missing derivations). When T
// contains embedded tgds the internal chase of d may diverge; the budget
// then yields Unknown — mirroring the paper's remark that the procedure
// "may loop forever if T has embedded tgds and the answer is negative".
//
// Non-recursive preservation implies preservation (Section IX), which is
// condition (2) of the Section X recipe for proving P₂ ⊑ P₁. A No verdict
// at depth k may flip to Yes at a larger depth (witnesses gain rounds too),
// so callers typically probe increasing depths.
func Check(p *ast.Program, tgds []ast.TGD, opts Options) (chase.Verdict, *Counterexample, error) {
	s, err := NewSession(p)
	if err != nil {
		return chase.Unknown, nil, err
	}
	return s.Check(tgds, opts)
}

// Check is the session form of the package-level Check; the depth-k
// unfolding is prepared once per session and reused across candidate tgds.
func (s *Session) Check(tgds []ast.TGD, opts Options) (chase.Verdict, *Counterexample, error) {
	// Options for each intentional LHS atom: every rule of p with the
	// right head predicate, plus the trivial rule Q(x̄) :- Q(x̄)
	// (Section IX augments the program with trivial rules so that the
	// combinations also cover "this atom was already in d").
	prep, idb, combo := s.prep, s.idb, s.combOpts()
	complete := true
	if opts.Depth > 1 {
		e, err := s.partialEntry(opts.Depth)
		if err != nil {
			return chase.Unknown, nil, err
		}
		prep, idb, combo, complete = e.prep, e.idb, e.opts, e.complete
	}
	sawUnknown := false
	for _, tau := range tgds {
		if err := eval.CtxErr(opts.Context); err != nil {
			return chase.Unknown, nil, err
		}
		v, cex, err := checkTGD(opts.Context, prep, idb, tgds, tau, opts.Budget, combo, s.stats)
		if err != nil {
			return chase.Unknown, nil, err
		}
		switch v {
		case chase.No:
			if !complete {
				return chase.Unknown, cex, nil
			}
			return chase.No, cex, nil
		case chase.Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return chase.Unknown, nil, nil
	}
	return chase.Yes, nil, nil
}

// CheckPreliminary decides condition (3′) of Section X: for every EDB d,
// the preliminary DB ⟨d, Pⁱ(d)⟩ of p satisfies T — at opts.Depth > 1 the
// preliminary DB generated by the depth-k unfolding (Section X's closing
// remark: any set of rules applied a fixed number of times will do). Per
// the paper's two modifications of Fig. 3: the tgds are NOT applied to d
// (d is an arbitrary EDB, not assumed to satisfy T), and no trivial rules
// are added (an EDB has no ground atoms of intentional predicates), with
// the rule options drawn from the non-recursive unfolded program only. The
// procedure always terminates; a complete unfolding never yields Unknown.
func CheckPreliminary(p *ast.Program, tgds []ast.TGD, opts Options) (chase.Verdict, *Counterexample, error) {
	s, err := NewSession(p)
	if err != nil {
		return chase.Unknown, nil, err
	}
	return s.CheckPreliminary(tgds, opts)
}

// CheckPreliminary is the session form of the package-level
// CheckPreliminary; the depth-k unfolded preliminary program is prepared
// once per session and reused across candidate tgds.
func (s *Session) CheckPreliminary(tgds []ast.TGD, opts Options) (chase.Verdict, *Counterexample, error) {
	depth := opts.Depth
	if depth < 1 {
		depth = 1
	}
	e, err := s.prelimEntry(depth)
	if err != nil {
		return chase.Unknown, nil, err
	}
	for _, tau := range tgds {
		if err := eval.CtxErr(opts.Context); err != nil {
			return chase.Unknown, nil, err
		}
		v, cex, err := checkTGDOnce(opts.Context, e.prep, e.idb, tau, e.opts, s.stats)
		if err != nil {
			return chase.Unknown, nil, err
		}
		if v == chase.No {
			if !e.complete {
				// The unfolding was truncated; the violation may be an
				// artifact of the missing derivations.
				return chase.Unknown, cex, nil
			}
			return chase.No, cex, nil
		}
	}
	return chase.Yes, nil, nil
}

// prelimEntry returns (building on first use) the prepared depth-k
// preliminary-DB variant: depth 1 is the initialization program Pⁱ, deeper
// entries unfold p to derivation depth k (Section X's closing remark).
func (s *Session) prelimEntry(depth int) (*depthEntry, error) {
	if e, ok := s.prelim[depth]; ok {
		return e, nil
	}
	var init *ast.Program
	complete := true
	var res unfold.Result
	if depth <= 1 {
		init = s.p.InitRules()
	} else {
		var err error
		res, err = unfold.ToDepth(s.p, depth, 0)
		if err != nil {
			return nil, err
		}
		init = res.Program
		complete = res.Complete
	}
	prep, hit, err := s.cache.PrepareHit(init, eval.Options{})
	if err != nil {
		return nil, err
	}
	s.countPrepare(hit)
	e := &depthEntry{prep: prep, idb: s.idb, opts: prelimOptions(init), complete: complete, res: res}
	s.prelim[depth] = e
	return e, nil
}

// prelimOptions builds the combination options of a preliminary program:
// producing rules only, no trivial options (an EDB has no ground atoms of
// intentional predicates).
func prelimOptions(init *ast.Program) map[string][]option {
	opts := make(map[string][]option)
	for _, r := range init.Rules {
		opts[r.Head.Pred] = append(opts[r.Head.Pred], option{rule: r})
	}
	return opts
}

// partialEntry returns (building on first use) the prepared depth-k
// partially unfolded variant Q with Qⁿ(d) = k rounds of P.
func (s *Session) partialEntry(depth int) (*depthEntry, error) {
	if e, ok := s.partial[depth]; ok {
		return e, nil
	}
	res, err := unfold.Partial(s.p, depth, 0)
	if err != nil {
		return nil, err
	}
	q := res.Program
	prep, hit, err := s.cache.PrepareHit(q, eval.Options{})
	if err != nil {
		return nil, err
	}
	s.countPrepare(hit)
	idb := q.IDBPredicates()
	e := &depthEntry{prep: prep, idb: idb, opts: combinationOptions(q, idb), complete: res.Complete, res: res}
	s.partial[depth] = e
	return e, nil
}

// option is one way to account for an intentional LHS atom: a producing
// rule, or (trivial=true) membership in d itself.
type option struct {
	rule    ast.Rule
	trivial bool
}

// combinationOptions returns, per intentional predicate, the rules of p
// with that head plus the trivial option.
func combinationOptions(p *ast.Program, idb map[string]bool) map[string][]option {
	opts := make(map[string][]option)
	for _, r := range p.Rules {
		opts[r.Head.Pred] = append(opts[r.Head.Pred], option{rule: r})
	}
	for pred := range idb {
		opts[pred] = append(opts[pred], option{trivial: true})
	}
	return opts
}

// checkTGD enumerates all combinations for tau against the prepared
// program and runs the interleaved chase-and-check loop on each.
func checkTGD(ctx context.Context, prep *eval.Prepared, idb map[string]bool, tgds []ast.TGD, tau ast.TGD, budget chase.Budget, opts map[string][]option, st *eval.Stats) (chase.Verdict, *Counterexample, error) {
	sawUnknown := false
	err := forEachCombination(idb, tau, opts, func(c *combination) error {
		if err := eval.CtxErr(ctx); err != nil {
			return err
		}
		v, cex := runCombination(prep, tgds, tau, c, budget, true, st)
		switch v {
		case chase.No:
			return &foundViolation{cex}
		case chase.Unknown:
			sawUnknown = true
		}
		return nil
	})
	if err != nil {
		var fv *foundViolation
		if asViolation(err, &fv) {
			return chase.No, fv.cex, nil
		}
		return chase.Unknown, nil, err
	}
	if sawUnknown {
		return chase.Unknown, nil, nil
	}
	return chase.Yes, nil, nil
}

// checkTGDOnce is the preliminary-DB variant: no tgd application to d, so a
// single Pⁿ(d) check decides each combination.
func checkTGDOnce(ctx context.Context, init *eval.Prepared, idb map[string]bool, tau ast.TGD, opts map[string][]option, st *eval.Stats) (chase.Verdict, *Counterexample, error) {
	err := forEachCombination(idb, tau, opts, func(c *combination) error {
		if err := eval.CtxErr(ctx); err != nil {
			return err
		}
		v, cex := runCombination(init, nil, tau, c, chase.Budget{MaxAtoms: 1 << 30, MaxRounds: 1}, false, st)
		if v == chase.No {
			return &foundViolation{cex}
		}
		return nil
	})
	if err != nil {
		var fv *foundViolation
		if asViolation(err, &fv) {
			return chase.No, fv.cex, nil
		}
		return chase.Unknown, nil, err
	}
	return chase.Yes, nil, nil
}

// foundViolation threads a counterexample out of the combination walk.
type foundViolation struct{ cex *Counterexample }

func (f *foundViolation) Error() string { return "violation found" }

func asViolation(err error, out **foundViolation) bool {
	fv, ok := err.(*foundViolation)
	if ok {
		*out = fv
	}
	return ok
}

// combination is one fully unified and frozen scenario: the database d of
// atoms known to be in the input, the instantiated LHS of the tgd, and the
// RHS with universal variables bound by theta (existential variables left
// free for the satisfaction search).
type combination struct {
	d     *db.Database
	lhs   []ast.GroundAtom
	rhs   []ast.Atom
	theta ast.Binding
}

// forEachCombination enumerates every way of assigning an option to each
// intentional atom of tau's LHS. For each assignment it computes the most
// general unifier of the atoms with their chosen rule heads, freezes the
// remaining variables, builds d, and invokes visit. Assignments whose
// unification fails are skipped: the mgu-level unification makes this
// sound (see the package comment). An intentional atom with no producing
// rule and no trivial option (the preliminary-DB variant) also makes the
// combination impossible, since nothing could have put that atom in the
// one-step closure.
func forEachCombination(idb map[string]bool, tau ast.TGD, opts map[string][]option, visit func(*combination) error) error {
	// Rename tau apart from all rule variables.
	tau = tau.Rename(func(v string) string { return "t·" + v })

	var intAtoms []ast.Atom
	var extAtoms []ast.Atom
	for _, a := range tau.Lhs {
		if idb[a.Pred] {
			intAtoms = append(intAtoms, a)
		} else {
			extAtoms = append(extAtoms, a)
		}
	}

	choice := make([]int, len(intAtoms))
	for {
		if err := visitCombination(tau, intAtoms, extAtoms, opts, choice, visit); err != nil {
			return err
		}
		// Advance the mixed-radix counter over choices.
		i := 0
		for ; i < len(choice); i++ {
			choice[i]++
			if choice[i] < len(opts[intAtoms[i].Pred]) {
				break
			}
			choice[i] = 0
		}
		if i == len(choice) {
			if len(choice) == 0 {
				return nil // single (empty) combination already visited
			}
			return nil
		}
		if len(choice) == 0 {
			return nil
		}
	}
}

func visitCombination(tau ast.TGD, intAtoms, extAtoms []ast.Atom, opts map[string][]option, choice []int, visit func(*combination) error) error {
	u := newUnifier()
	type assigned struct {
		body    []ast.Atom
		trivial bool
		atom    ast.Atom
	}
	var asgs []assigned
	for i, a := range intAtoms {
		options := opts[a.Pred]
		if len(options) == 0 {
			return nil // no producer: combination impossible
		}
		opt := options[choice[i]]
		if opt.trivial {
			asgs = append(asgs, assigned{trivial: true, atom: a})
			continue
		}
		r := opt.rule.RenameApart(i)
		if !u.UnifyAtoms(a, r.Head) {
			return nil // constant clash: combination impossible
		}
		asgs = append(asgs, assigned{body: r.Body, atom: a})
	}

	// Apply the unifier everywhere, then freeze every remaining universal
	// variable (tau's LHS variables and all rule-body variables) to
	// distinct constants. Existential variables of tau appear only in the
	// RHS and stay free.
	lhsAtoms := u.ApplyAll(tau.Lhs)
	rhsAtoms := u.ApplyAll(tau.Rhs)
	existential := make(map[string]bool)
	for _, v := range tau.ExistentialVars() {
		// Existential names survive the unifier untouched (they never occur
		// in the LHS or rule heads).
		existential[v] = true
	}

	frozen := make(map[string]bool)
	var freezeList []string
	collect := func(atoms []ast.Atom) {
		for _, a := range atoms {
			for _, t := range a.Args {
				if t.IsVar && !existential[t.Name] && !frozen[t.Name] {
					frozen[t.Name] = true
					freezeList = append(freezeList, t.Name)
				}
			}
		}
	}
	collect(lhsAtoms)
	for i := range asgs {
		asgs[i].body = u.ApplyAll(asgs[i].body)
		collect(asgs[i].body)
	}

	gen := ast.NewFrozenGen(0)
	theta := ast.FreezeVars(freezeList, gen)

	d := db.New()
	for _, a := range u.ApplyAll(extAtoms) {
		d.Add(a.MustGround(theta))
	}
	lhs := make([]ast.GroundAtom, len(lhsAtoms))
	for i, a := range lhsAtoms {
		lhs[i] = a.MustGround(theta)
	}
	for _, asg := range asgs {
		if asg.trivial {
			d.Add(u.Apply(asg.atom).MustGround(theta))
			continue
		}
		for _, a := range asg.body {
			d.Add(a.MustGround(theta))
		}
	}

	return visit(&combination{d: d, lhs: lhs, rhs: rhsAtoms, theta: theta})
}

// runCombination executes the interleaved loop of Section IX on one
// combination: check whether the instantiated LHS exhibits a violation in
// ⟨d, Pⁿ(d)⟩; if it does, apply one round of T to d (inferences implied by
// d ∈ SAT(T)) and re-check; conclude a genuine violation only when d has
// reached its T-fixpoint. With chaseD=false (the preliminary-DB variant) no
// tgds are applied and the first check decides.
func runCombination(prep *eval.Prepared, tgds []ast.TGD, tau ast.TGD, c *combination, budget chase.Budget, chaseD bool, st *eval.Stats) (chase.Verdict, *Counterexample) {
	budget = normalize(budget)
	_, maxNull := c.d.MaxGeneratedIndexes()
	nullGen := ast.NewNullGen(maxNull + 1)
	d := c.d
	for round := 0; round < budget.MaxRounds; round++ {
		st.Rounds++
		full := d.Clone()
		st.Added += full.AddAll(prep.NonRecursive(d))
		if db.Satisfiable(full, c.rhs, c.theta) {
			return chase.Yes, nil
		}
		if !chaseD {
			return chase.No, &Counterexample{TGD: tau, DB: d.Clone(), LHS: c.lhs}
		}
		added := chase.ApplyTGDRound(tgds, d, nullGen)
		st.Added += added
		if added == 0 {
			return chase.No, &Counterexample{TGD: tau, DB: d.Clone(), LHS: c.lhs}
		}
		if d.Len() > budget.MaxAtoms {
			return chase.Unknown, nil
		}
	}
	return chase.Unknown, nil
}

func normalize(b chase.Budget) chase.Budget {
	if b.MaxAtoms == 0 {
		b.MaxAtoms = chase.DefaultBudget.MaxAtoms
	}
	if b.MaxRounds == 0 {
		b.MaxRounds = chase.DefaultBudget.MaxRounds
	}
	return b
}
