package preserve

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/parser"
)

func tgds(srcs ...string) []ast.TGD {
	out := make([]ast.TGD, len(srcs))
	for i, s := range srcs {
		out[i] = parser.MustParseTGD(s)
	}
	return out
}

func TestExample13And14Preservation(t *testing.T) {
	// Example 14: P1 preserves T = {G(x,z) -> A(x,w)} non-recursively.
	// (Example 13 is the recursive-rule combination of the same check.)
	p1 := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	v, cex, err := Check(p1, tgds("G(x, z) -> A(x, w)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("Example 14: verdict %v (cex: %v)", v, cex)
	}
}

func TestExample15TwoAtomLHS(t *testing.T) {
	// r: G(x,z) :- G(x,y), G(y,z), A(y,w) preserves
	// τ: G(x,y) ∧ G(y,z) -> A(y,w); all four combinations pass.
	r := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z), A(y, w).`)
	v, cex, err := Check(r, tgds("G(x, y), G(y, z) -> A(y, w)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("Example 15: verdict %v (cex: %v)", v, cex)
	}
}

func TestExample16(t *testing.T) {
	// r: G(x,z) :- A(x,y), G(y,z), G(y,w), C(w) preserves
	// τ: G(y,z) -> G(y,w) ∧ C(w).
	r := parser.MustParseProgram(`G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).`)
	v, cex, err := Check(r, tgds("G(y, z) -> G(y, w), C(w)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("Example 16: verdict %v (cex: %v)", v, cex)
	}
}

func TestNonPreservationDetected(t *testing.T) {
	// Pure transitive closure does NOT preserve "every G edge has a
	// parallel A edge": composing two G edges loses the A witness.
	p := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z).`)
	v, cex, err := Check(p, tgds("G(x, y) -> A(x, y)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("verdict %v, want no", v)
	}
	if cex == nil || len(cex.LHS) != 1 || cex.LHS[0].Pred != "G" {
		t.Fatalf("counterexample malformed: %v", cex)
	}
	// The counterexample's d really satisfies the tgd set and really
	// exhibits the violation after one application of p: sanity-check the
	// shape (two chained G atoms with their A witnesses).
	if cex.DB.Relation("G") == nil || cex.DB.Relation("G").Len() != 2 {
		t.Fatalf("counterexample DB unexpected:\n%v", cex.DB)
	}
}

func TestEmbeddedNonTerminationGivesUnknown(t *testing.T) {
	// τ2 keeps inventing new nulls, so the inner chase of d never reaches a
	// fixpoint and the violation of τ1 never resolves: budget → Unknown.
	p := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z).`)
	T := tgds("G(x, y) -> B(x, y).", "B(x, y) -> B(y, z).")
	v, _, err := Check(p, T, Options{Budget: chase.Budget{MaxAtoms: 40, MaxRounds: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Unknown {
		t.Fatalf("verdict %v, want unknown", v)
	}
}

func TestExample18PreliminarySatisfies(t *testing.T) {
	p1 := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	v, cex, err := CheckPreliminary(p1, tgds("G(x, z) -> A(x, w)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("Example 18 (3′): verdict %v (cex: %v)", v, cex)
	}
}

func TestExample19PreliminarySatisfies(t *testing.T) {
	p1 := parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(z).
		G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
	`)
	v, cex, err := CheckPreliminary(p1, tgds("G(y, z) -> G(y, w), C(w)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("Example 19 (3′): verdict %v (cex: %v)", v, cex)
	}
}

func TestPreliminaryViolationDetected(t *testing.T) {
	// Init rule G(x,z) :- A(x,z) does not guarantee C(z), so the
	// preliminary DB can violate G(x,z) -> C(z).
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	v, cex, err := CheckPreliminary(p, tgds("G(x, z) -> C(z)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("verdict %v, want no", v)
	}
	if cex == nil {
		t.Fatal("missing counterexample")
	}
}

func TestRepeatedVariableHeadSoundness(t *testing.T) {
	// The refinement over the paper's ground-unification presentation: with
	// the init rule G(z,z) :- B(z), the LHS G(x,y) only matches collapsed
	// instances; ground unification against distinct constants would miss
	// them and wrongly report preservation. The mgu-level procedure finds
	// the violation of G(x,y) -> A(x).
	p := parser.MustParseProgram(`G(z, z) :- B(z).`)
	v, cex, err := CheckPreliminary(p, tgds("G(x, y) -> A(x)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("repeated-variable head: verdict %v, want no", v)
	}
	if cex == nil || cex.LHS[0].Args[0] != cex.LHS[0].Args[1] {
		t.Fatalf("counterexample should collapse x and y: %v", cex)
	}
	// And the satisfied variant passes.
	p2 := parser.MustParseProgram(`G(z, z) :- B(z), A(z).`)
	v, _, err = CheckPreliminary(p2, tgds("G(x, y) -> A(x)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("satisfied repeated-variable case: verdict %v", v)
	}
}

func TestExtensionalLHSAtoms(t *testing.T) {
	// A tgd whose LHS is purely extensional: only the EDB part matters.
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	// A(x,y) -> G(x,y) after one non-recursive application: holds, since
	// the init rule derives exactly that.
	v, cex, err := Check(p, tgds("A(x, y) -> G(x, y)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("extensional LHS: verdict %v (cex: %v)", v, cex)
	}
	// A(x,y) -> Z(x): a purely extensional LHS can only be instantiated in
	// d itself, and d ∈ SAT(T) already provides the witness — so every
	// program trivially preserves such a tgd non-recursively.
	v, _, err = Check(p, tgds("A(x, y) -> Z(x)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("purely extensional LHS must be vacuously preserved: verdict %v", v)
	}
	// But the preliminary-DB variant makes no SAT(T) assumption on the EDB,
	// so the same tgd is refutable there.
	v, _, err = CheckPreliminary(p, tgds("A(x, y) -> Z(x)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("preliminary DB cannot guarantee Z(x): verdict %v", v)
	}
}

func TestTrivialRuleCombinationNeeded(t *testing.T) {
	// A two-atom LHS where the mixed combinations (one atom from d, one
	// from Pⁿ(d)) matter — the Example 15 structure with a weaker program
	// that fails. P derives G(x,z) from E(x,z) only; the tgd claims chained
	// G atoms have a C witness, which d alone need not provide.
	p := parser.MustParseProgram(`G(x, z) :- E(x, z).`)
	v, _, err := Check(p, tgds("G(x, y), G(y, z) -> C(y)."), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("verdict %v, want no (mixed combination violates)", v)
	}
}

func TestPreservationWithNoTgds(t *testing.T) {
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	v, _, err := Check(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("empty T: verdict %v", v)
	}
	v, _, err = CheckPreliminary(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("empty T (3′): verdict %v", v)
	}
}

func TestNegationRejected(t *testing.T) {
	p := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, _, err := Check(p, tgds("P(x) -> A(x)."), Options{}); err == nil {
		t.Fatal("negation accepted")
	}
	if _, _, err := CheckPreliminary(p, tgds("P(x) -> A(x)."), Options{}); err == nil {
		t.Fatal("negation accepted by preliminary test")
	}
}

func TestUnifierBasics(t *testing.T) {
	u := newUnifier()
	a := parser.MustParseAtom("G(x, y, 3)")
	b := parser.MustParseAtom("G(u, u, 3)")
	if !u.UnifyAtoms(a, b) {
		t.Fatal("unification failed")
	}
	ra := u.Apply(a)
	if !ra.Args[0].Equal(ra.Args[1]) {
		t.Fatalf("x and y not identified: %v", ra)
	}
	// Constant clash.
	u2 := newUnifier()
	if u2.UnifyAtoms(parser.MustParseAtom("G(3)"), parser.MustParseAtom("G(4)")) {
		t.Fatal("unified clashing constants")
	}
	// Predicate mismatch.
	u3 := newUnifier()
	if u3.UnifyAtoms(parser.MustParseAtom("G(x)"), parser.MustParseAtom("H(x)")) {
		t.Fatal("unified different predicates")
	}
	// Transitive chains resolve.
	u4 := newUnifier()
	if !u4.UnifyAtoms(parser.MustParseAtom("P(x, y)"), parser.MustParseAtom("P(y, 5)")) {
		t.Fatal("chain unification failed")
	}
	if got := u4.Apply(parser.MustParseAtom("P(x, y)")); got.Args[0].Val != ast.Int(5) || got.Args[1].Val != ast.Int(5) {
		t.Fatalf("chain resolution wrong: %v", got)
	}
}
