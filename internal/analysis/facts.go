package analysis

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/depgraph"
	"repro/internal/parser"
)

// Context carries the program under analysis plus shared computed facts.
// Passes pull facts through the lazy accessors (Graph, Sites, Preds), so a
// filtered pass list pays only for what it uses, and each fact is computed
// once per run however many passes consume it.
type Context struct {
	Program *ast.Program
	Facts   []ast.GroundAtom
	FactPos []ast.Pos
	TGDs    []ast.TGD
	Symbols *ast.SymbolTable

	sites   []Site
	graph   *depgraph.Graph
	preds   map[string]*PredUse
	order   []string
	term    depgraph.Classification
	termSet bool
}

// Termination returns the chase-termination classification of the source's
// rules and tgds (see depgraph.ClassifyTGDs), computed once per context.
func (c *Context) Termination() depgraph.Classification {
	if !c.termSet {
		var rules []ast.Rule
		if c.Program != nil {
			rules = c.Program.Rules
		}
		c.term = depgraph.ClassifyTGDs(rules, c.TGDs)
		c.termSet = true
	}
	return c.term
}

// NewContext builds a Context from a parse result (use parser.ParseLoose so
// the analyzer sees ill-formed programs instead of a parse-stage rejection).
func NewContext(res *parser.Result) *Context {
	return &Context{
		Program: res.Program,
		Facts:   res.Facts,
		FactPos: res.FactPos,
		TGDs:    res.TGDs,
		Symbols: res.Symbols,
	}
}

// SiteKind says where an atom occurrence sits.
type SiteKind int

const (
	SiteFact SiteKind = iota
	SiteHead
	SiteBody
	SiteNeg
	SiteTGDLhs
	SiteTGDRhs
)

// Site is one atom occurrence: its kind, the index of its statement within
// that kind (rule, tgd or fact index), the atom, and a resolved position
// (the atom's own, falling back to the enclosing rule's).
type Site struct {
	Kind  SiteKind
	Index int
	Atom  ast.Atom
	Pos   ast.Pos
}

// Sites returns every atom occurrence of the source in position order
// (facts, rule heads, bodies, negated bodies, tgd sides), computed once.
// Position order matters: "first occurrence" diagnostics should point at
// whatever the reader meets first, even though facts, rules and tgds are
// stored in separate slices.
func (c *Context) Sites() []Site {
	if c.sites != nil {
		return c.sites
	}
	var sites []Site
	for i, g := range c.Facts {
		a := g.Atom()
		if i < len(c.FactPos) {
			a.Pos = c.FactPos[i]
		}
		sites = append(sites, Site{Kind: SiteFact, Index: i, Atom: a, Pos: a.Pos})
	}
	pos := func(a ast.Atom, r ast.Rule) ast.Pos {
		if a.Pos.IsValid() {
			return a.Pos
		}
		return r.Pos
	}
	for i, r := range c.Program.Rules {
		sites = append(sites, Site{Kind: SiteHead, Index: i, Atom: r.Head, Pos: pos(r.Head, r)})
		for _, a := range r.Body {
			sites = append(sites, Site{Kind: SiteBody, Index: i, Atom: a, Pos: pos(a, r)})
		}
		for _, a := range r.NegBody {
			sites = append(sites, Site{Kind: SiteNeg, Index: i, Atom: a, Pos: pos(a, r)})
		}
	}
	for i, t := range c.TGDs {
		for _, a := range t.Lhs {
			sites = append(sites, Site{Kind: SiteTGDLhs, Index: i, Atom: a, Pos: a.Pos})
		}
		for _, a := range t.Rhs {
			sites = append(sites, Site{Kind: SiteTGDRhs, Index: i, Atom: a, Pos: a.Pos})
		}
	}
	sort.SliceStable(sites, func(i, j int) bool { return sites[i].Pos.Before(sites[j].Pos) })
	c.sites = sites
	return sites
}

// Graph returns the dependence graph of the program, built once.
func (c *Context) Graph() *depgraph.Graph {
	if c.graph == nil {
		c.graph = depgraph.Build(c.Program)
	}
	return c.graph
}

// PredUse aggregates how one predicate is used across the source.
type PredUse struct {
	Name string
	// FirstPos is the position of the predicate's first occurrence (any
	// site kind); Arity the arity it had there.
	FirstPos ast.Pos
	Arity    int
	// HeadRules indexes the rules with this head predicate.
	HeadRules []int
	// BodyUses / NegUses / TGDUses count occurrences in positive rule
	// bodies, negated rule bodies, and either side of a tgd.
	BodyUses int
	NegUses  int
	TGDUses  int
	// FactCount counts source facts; FirstFactPos locates the first.
	FirstFactPos ast.Pos
	FactCount    int
}

// Preds returns per-predicate usage, computed once from Sites.
func (c *Context) Preds() map[string]*PredUse {
	if c.preds != nil {
		return c.preds
	}
	c.preds = make(map[string]*PredUse)
	for _, s := range c.Sites() {
		u, ok := c.preds[s.Atom.Pred]
		if !ok {
			u = &PredUse{Name: s.Atom.Pred, FirstPos: s.Pos, Arity: len(s.Atom.Args)}
			c.preds[s.Atom.Pred] = u
			c.order = append(c.order, s.Atom.Pred)
		}
		switch s.Kind {
		case SiteFact:
			if u.FactCount == 0 {
				u.FirstFactPos = s.Pos
			}
			u.FactCount++
		case SiteHead:
			u.HeadRules = append(u.HeadRules, s.Index)
		case SiteBody:
			u.BodyUses++
		case SiteNeg:
			u.NegUses++
		case SiteTGDLhs, SiteTGDRhs:
			u.TGDUses++
		}
	}
	return c.preds
}

// PredNames returns the predicates in first-occurrence order (the iteration
// order passes use, keeping diagnostics deterministic).
func (c *Context) PredNames() []string {
	c.Preds()
	return c.order
}

// rulePos resolves the reporting position of rule i (its head atom's, or
// the rule's own).
func (c *Context) rulePos(i int) ast.Pos {
	r := c.Program.Rules[i]
	if r.Head.Pos.IsValid() {
		return r.Head.Pos
	}
	return r.Pos
}

// atomPos resolves an atom's reporting position with the enclosing rule as
// fallback.
func atomPos(a ast.Atom, r ast.Rule) ast.Pos {
	if a.Pos.IsValid() {
		return a.Pos
	}
	return r.Pos
}

// format renders an atom through the source's symbol table when available.
func (c *Context) format(a ast.Atom) string { return a.Format(c.Symbols) }
