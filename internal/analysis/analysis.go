// Package analysis is a multi-pass static analyzer for Datalog programs.
// The optimization procedures of the paper assume their input is
// well-formed — safe, range-restricted, stratifiable — and the evaluator
// discovers violations only as wrong fixpoints or hard errors; this package
// finds them (and a family of cheap, purely syntactic optimization
// opportunities) before anything runs, reporting each as a positioned
// Diagnostic with a stable code.
//
// A Pass consumes a Context — the parsed program plus shared computed facts
// (the dependence graph, per-predicate usage, atom occurrence sites) — and
// emits diagnostics. Passes never mutate the program and are independent:
// each tolerates input that other passes reject, so a single run reports
// everything at once. The same machinery backs three surfaces: the
// `datalog vet` subcommand, core.Analyze, and the θ-subsumption fast path
// the containment sessions use to skip chases (internal/chase).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/parser"
)

// Severity classifies a finding. Errors make `datalog vet` exit nonzero;
// warnings flag likely bugs or redundancy; infos are observations.
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity in vet's lowercase style.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic codes. These are stable identifiers: golden files, editors and
// suppression comments key on them, so codes are never renumbered — only
// appended.
const (
	// CodeParse: the source does not parse (reported by the vet surface,
	// which has no Context to run passes over).
	CodeParse = "DL0000"
	// CodeUnboundHead: a head variable is not bound by the positive body
	// (range restriction, Section II).
	CodeUnboundHead = "DL0001"
	// CodeUnsafeNegation: a variable of a negated atom is not bound by the
	// positive body.
	CodeUnsafeNegation = "DL0002"
	// CodeArity: a predicate is used with two different arities.
	CodeArity = "DL0003"
	// CodeConstType: one predicate column mixes integer and symbolic
	// constants.
	CodeConstType = "DL0004"
	// CodeNotStratifiable: negation through recursion, with the witness
	// cycle.
	CodeNotStratifiable = "DL0005"
	// CodeUnderivable: a derived predicate no rule chain can ever populate
	// from the source's facts.
	CodeUnderivable = "DL0006"
	// CodeUnusedPred: a predicate (facts or derived) nothing reads.
	CodeUnusedPred = "DL0007"
	// CodeSingletonVar: a named variable occurring exactly once in a rule.
	CodeSingletonVar = "DL0008"
	// CodeCartesianProduct: body atoms sharing no variables, directly or
	// transitively — an unconstrained join.
	CodeCartesianProduct = "DL0009"
	// CodeDuplicateRule: two rules identical up to variable renaming.
	CodeDuplicateRule = "DL0010"
	// CodeSubsumedRule: a rule θ-subsumed by another; deleting it preserves
	// uniform equivalence.
	CodeSubsumedRule = "DL0011"
	// CodeTGDCandidate: a tgd measured against Section XI's candidate
	// properties 1–3.
	CodeTGDCandidate = "DL0012"
	// CodeTerminationClass: the chase-termination class of the rule + tgd
	// set (weakly-acyclic, jointly-acyclic, sticky or weakly-sticky).
	CodeTerminationClass = "DL0013"
	// CodeNotWeaklyAcyclic: a position-graph cycle through a special
	// (existential) edge, with the witness cycle.
	CodeNotWeaklyAcyclic = "DL0014"
	// CodeMarkedJoin: a sticky-marking join violation — a marked variable
	// occurring more than once in one dependency body.
	CodeMarkedJoin = "DL0015"
	// CodeDivergent: the set falls outside every decidable termination
	// class; chase budgets are load-bearing.
	CodeDivergent = "DL0016"
)

// RelatedPos points a diagnostic at a second location — the other half of a
// conflict, the subsuming rule, the first arity occurrence.
type RelatedPos struct {
	Pos     ast.Pos
	Message string
}

// Diagnostic is one finding: a stable code, a severity, the position it
// anchors to (zero when unknown), a message, and related positions. Pass
// names the analysis pass that produced it (filled in by Run).
type Diagnostic struct {
	Code     string
	Severity Severity
	Pos      ast.Pos
	Message  string
	Related  []RelatedPos
	Pass     string
}

// String renders "line:col: severity: message [CODE]" (the position is
// omitted when unknown).
func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.Pos.IsValid() {
		sb.WriteString(d.Pos.String())
		sb.WriteString(": ")
	}
	fmt.Fprintf(&sb, "%s: %s [%s]", d.Severity, d.Message, d.Code)
	return sb.String()
}

// Pass is one analysis: a name for -json output and debugging, a one-line
// doc, and the run function.
type Pass struct {
	Name string
	Doc  string
	Run  func(*Context) []Diagnostic
}

// Passes returns the full pass list in execution order. The slice is fresh
// per call; callers may filter it.
func Passes() []Pass {
	return []Pass{
		{"safety", "range restriction and negated-atom safety (DL0001, DL0002)", runSafety},
		{"stratify", "negation through recursion, with witness cycle (DL0005)", runStratify},
		{"arity", "per-predicate arity and constant-type consistency (DL0003, DL0004)", runArity},
		{"reachability", "underivable and unused predicates (DL0006, DL0007)", runReachability},
		{"singleton", "variables occurring exactly once in a rule (DL0008)", runSingleton},
		{"product", "cartesian-product joins between body atom groups (DL0009)", runProduct},
		{"subsumption", "duplicate and θ-subsumed rules (DL0010, DL0011)", runSubsumption},
		{"tgdcheck", "tgd sanity against Section XI candidate properties 1–3 (DL0012)", runTGDCheck},
		{"termination", "chase-termination class of the rule + tgd set (DL0013–DL0016)", runTermination},
	}
}

// Analyze runs every pass over a parsed source (typically from
// parser.ParseLoose, so ill-formed programs are analyzed rather than
// rejected) and returns the combined diagnostics in position order.
func Analyze(res *parser.Result) []Diagnostic {
	return Run(NewContext(res), Passes())
}

// AnalyzeProgram analyzes a programmatically built program (no facts, no
// tgds, usually no positions).
func AnalyzeProgram(p *ast.Program) []Diagnostic {
	return Run(&Context{Program: p}, Passes())
}

// Run executes the given passes over one context and sorts the combined
// findings.
func Run(c *Context, passes []Pass) []Diagnostic {
	var out []Diagnostic
	for _, p := range passes {
		ds := p.Run(c)
		for i := range ds {
			if ds[i].Pass == "" {
				ds[i].Pass = p.Name
			}
		}
		out = append(out, ds...)
	}
	SortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by position (unknown last), then code,
// then message — the stable order golden files rely on.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos.Before(ds[j].Pos)
		}
		if ds[i].Code != ds[j].Code {
			return ds[i].Code < ds[j].Code
		}
		return ds[i].Message < ds[j].Message
	})
}

// HasErrors reports whether any finding has Error severity — the vet exit
// condition.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
