package analysis

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/depgraph"
)

// runTermination reports the chase-termination class of the source's rule +
// tgd set (DL0013) with witnesses for each classifier the set fails: the
// special-edge position cycle breaking weak acyclicity (DL0014), the marked
// join variable breaking stickiness (DL0015), and a summary warning when
// the set falls outside every decidable class (DL0016). Programs without
// tgds are silent — plain rules never create nulls, so there is nothing to
// classify.
func runTermination(c *Context) []Diagnostic {
	if len(c.TGDs) == 0 {
		return nil
	}
	cl := c.Termination()
	anchor := c.tgdPos(0)
	var out []Diagnostic

	if cl.Class != depgraph.TermDivergent {
		out = append(out, Diagnostic{
			Code:     CodeTerminationClass,
			Severity: Info,
			Pos:      anchor,
			Message: fmt.Sprintf("tgd set is %s: %s", cl.Class,
				classNote(cl.Class)),
		})
	}

	if cl.WAViolation != nil {
		sev := Warning
		if cl.Class.ChaseTerminates() {
			sev = Info
		}
		d := Diagnostic{
			Code:     CodeNotWeaklyAcyclic,
			Severity: sev,
			Pos:      c.depPos(cl.WAViolation.Origins[0]),
			Message: fmt.Sprintf("not weakly acyclic: position cycle through a special edge: %s",
				cl.WAViolation.String()),
		}
		for _, ref := range dedupRefs(cl.WAViolation.Origins) {
			d.Related = append(d.Related, RelatedPos{
				Pos:     c.depPos(ref),
				Message: fmt.Sprintf("%s contributes an edge of the cycle", c.depName(ref)),
			})
		}
		out = append(out, d)
	}

	if j := cl.StickyViolation; j != nil {
		sev, note := Warning, "the chase can copy marked nulls into an unbounded join"
		if cl.Class == depgraph.TermWeaklySticky {
			sev, note = Info, "rescued by a finite-rank occurrence (weakly sticky)"
		}
		out = append(out, Diagnostic{
			Code:     CodeMarkedJoin,
			Severity: sev,
			Pos:      c.depPos(j.Dep),
			Message: fmt.Sprintf("marked variable %s joins %d occurrences of %s in %s: %s",
				j.Var, j.Occurrences, depgraph.FormatPositions(j.Positions), c.depName(j.Dep), note),
		})
	}

	if cl.Class == depgraph.TermDivergent {
		out = append(out, Diagnostic{
			Code:     CodeDivergent,
			Severity: Warning,
			Pos:      anchor,
			Message: "tgd set is divergence-capable (not weakly acyclic, jointly acyclic or " +
				"weakly sticky): the chase may not terminate and budget cutoffs are load-bearing",
		})
	}
	return out
}

func classNote(c depgraph.TerminationClass) string {
	switch c {
	case depgraph.TermWeaklyAcyclic, depgraph.TermJointlyAcyclic:
		return "every chase terminates; a provable bound replaces the default budget"
	case depgraph.TermSticky:
		return "the chase may diverge but query answering is decidable"
	case depgraph.TermWeaklySticky:
		return "marked joins stay on finite-rank positions; query answering is decidable"
	default:
		return ""
	}
}

// tgdPos resolves the reporting position of tgd i (its first lhs atom's).
func (c *Context) tgdPos(i int) ast.Pos {
	if i < 0 || i >= len(c.TGDs) {
		return ast.Pos{}
	}
	t := c.TGDs[i]
	if len(t.Lhs) > 0 {
		return t.Lhs[0].Pos
	}
	if len(t.Rhs) > 0 {
		return t.Rhs[0].Pos
	}
	return ast.Pos{}
}

// depPos resolves a witness dependency to a source position.
func (c *Context) depPos(ref depgraph.DepRef) ast.Pos {
	if ref.TGD >= 0 {
		return c.tgdPos(ref.TGD)
	}
	return c.rulePos(ref.Rule)
}

// depName renders a witness dependency for messages ("tgd 1", "rule 2").
func (c *Context) depName(ref depgraph.DepRef) string {
	if ref.TGD >= 0 {
		return fmt.Sprintf("tgd %d", ref.TGD+1)
	}
	return fmt.Sprintf("rule %d", ref.Rule+1)
}

func dedupRefs(refs []depgraph.DepRef) []depgraph.DepRef {
	seen := make(map[depgraph.DepRef]bool)
	var out []depgraph.DepRef
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
