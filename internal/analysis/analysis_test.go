package analysis

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/workload"
)

// analyze parses loosely and runs all passes.
func analyze(t *testing.T, src string) []Diagnostic {
	t.Helper()
	res, err := parser.ParseLoose(src)
	if err != nil {
		t.Fatalf("ParseLoose: %v", err)
	}
	return Analyze(res)
}

// want asserts exactly one diagnostic with the code exists and returns it.
func want(t *testing.T, ds []Diagnostic, code string) Diagnostic {
	t.Helper()
	var found []Diagnostic
	for _, d := range ds {
		if d.Code == code {
			found = append(found, d)
		}
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one %s, got %d in %v", code, len(found), ds)
	}
	return found[0]
}

func wantNone(t *testing.T, ds []Diagnostic, code string) {
	t.Helper()
	for _, d := range ds {
		if d.Code == code {
			t.Fatalf("unexpected %s: %s", code, d)
		}
	}
}

func TestSafetyPass(t *testing.T) {
	ds := analyze(t, "P(x, z) :- E(x, y).\n")
	d := want(t, ds, CodeUnboundHead)
	if d.Severity != Error || d.Pos != (ast.Pos{Line: 1, Col: 1}) {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	if !strings.Contains(d.Message, "z") {
		t.Fatalf("message does not name the variable: %s", d.Message)
	}

	ds = analyze(t, "Q(x) :- E(x, y), !R(x, w).\n")
	d = want(t, ds, CodeUnsafeNegation)
	if d.Pos != (ast.Pos{Line: 1, Col: 19}) {
		t.Fatalf("negated-atom position = %v, want 1:19", d.Pos)
	}

	wantNone(t, analyze(t, "P(x) :- E(x, y), !R(x, y).\n"), CodeUnsafeNegation)
}

func TestStratifyPass(t *testing.T) {
	ds := analyze(t, "P(x) :- E(x), !Q(x).\nQ(x) :- E(x), P(x).\n")
	d := want(t, ds, CodeNotStratifiable)
	if d.Severity != Error || d.Pos != (ast.Pos{Line: 1, Col: 16}) {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	if !strings.Contains(d.Message, "Q → P → Q") {
		t.Fatalf("missing witness cycle: %s", d.Message)
	}
	if len(d.Related) == 0 {
		t.Fatalf("no related positions for the cycle edges")
	}

	// Stratifiable negation is clean.
	wantNone(t, analyze(t, "P(x) :- E(x), !Q(x).\nQ(x) :- F(x).\n"), CodeNotStratifiable)
}

func TestArityPass(t *testing.T) {
	ds := analyze(t, "E(1, 2).\nE(1, 2, 3).\nP(x) :- E(x, y).\n")
	d := want(t, ds, CodeArity)
	if d.Severity != Error || d.Pos != (ast.Pos{Line: 2, Col: 1}) {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	if len(d.Related) != 1 || d.Related[0].Pos != (ast.Pos{Line: 1, Col: 1}) {
		t.Fatalf("related should point at the first occurrence: %+v", d.Related)
	}
}

func TestConstTypePass(t *testing.T) {
	ds := analyze(t, "Name(\"ann\").\nName(7).\nP(x) :- Name(x).\n")
	d := want(t, ds, CodeConstType)
	if d.Severity != Warning || d.Pos != (ast.Pos{Line: 2, Col: 1}) {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	// Consistent columns are clean, including multiple symbolics.
	wantNone(t, analyze(t, "Name(\"ann\").\nName(\"bob\").\nP(x) :- Name(x).\n"), CodeConstType)
}

func TestReachabilityPass(t *testing.T) {
	src := "P(x) :- Q(x).\nQ(x) :- P(x).\nOrphan(1, 2).\nR(x) :- E(x).\n"
	ds := analyze(t, src)
	var underivable []string
	for _, d := range ds {
		if d.Code == CodeUnderivable {
			underivable = append(underivable, d.Message[:1])
		}
	}
	if len(underivable) != 2 {
		t.Fatalf("want P and Q underivable, got %v in %v", underivable, ds)
	}
	found := 0
	for _, d := range ds {
		if d.Code == CodeUnusedPred {
			found++
			switch {
			case strings.Contains(d.Message, "Orphan"):
				if d.Severity != Warning || d.Pos != (ast.Pos{Line: 3, Col: 1}) {
					t.Fatalf("bad orphan diagnostic: %+v", d)
				}
			case strings.Contains(d.Message, "R "):
				if d.Severity != Info {
					t.Fatalf("head-only predicate should be info: %+v", d)
				}
			}
		}
	}
	if found < 2 {
		t.Fatalf("missing unused-predicate findings in %v", ds)
	}

	// A base case makes the component derivable.
	wantNone(t, analyze(t, "P(x) :- Q(x).\nQ(x) :- P(x).\nQ(x) :- E(x).\nS(x) :- P(x).\n"), CodeUnderivable)
	// Facts for a derived predicate seed it.
	wantNone(t, analyze(t, "P(1).\nP(x) :- P(x).\nS(x) :- P(x).\n"), CodeUnderivable)
}

func TestSingletonPass(t *testing.T) {
	ds := analyze(t, "Q(x) :- E(x, y).\n")
	d := want(t, ds, CodeSingletonVar)
	if d.Severity != Warning || d.Pos != (ast.Pos{Line: 1, Col: 9}) {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	// The anonymous variable is exempt.
	wantNone(t, analyze(t, "Q(x) :- E(x, _).\n"), CodeSingletonVar)
	// A head-only variable is DL0001, not a singleton.
	wantNone(t, analyze(t, "Q(x, z) :- E(x, x).\n"), CodeSingletonVar)
}

func TestProductPass(t *testing.T) {
	ds := analyze(t, "P(x, z) :- E(x, y), F(z, w), G(w, u).\n")
	d := want(t, ds, CodeCartesianProduct)
	if d.Severity != Warning || d.Pos != (ast.Pos{Line: 1, Col: 21}) {
		t.Fatalf("bad diagnostic: %+v", d)
	}
	// Transitive sharing connects; ground guards don't count as groups.
	wantNone(t, analyze(t, "P(x, z) :- E(x, y), F(y, z).\n"), CodeCartesianProduct)
	wantNone(t, analyze(t, "P(x, x) :- E(x, x), F(1, 2).\n"), CodeCartesianProduct)
}

func TestSubsumptionPass(t *testing.T) {
	src := "G(x, z) :- A(x, z).\nG(u, w) :- A(u, w).\nG(x, z) :- A(x, z), A(z, z).\n"
	ds := analyze(t, src)
	dup := want(t, ds, CodeDuplicateRule)
	if dup.Pos != (ast.Pos{Line: 2, Col: 1}) {
		t.Fatalf("duplicate flagged at %v, want line 2", dup.Pos)
	}
	sub := want(t, ds, CodeSubsumedRule)
	if sub.Pos != (ast.Pos{Line: 3, Col: 1}) {
		t.Fatalf("subsumed flagged at %v, want line 3", sub.Pos)
	}
	if len(sub.Related) != 1 || sub.Related[0].Pos != (ast.Pos{Line: 1, Col: 1}) {
		t.Fatalf("subsumed should relate to rule 1: %+v", sub.Related)
	}

	// TC's two rules do not subsume each other.
	wantNone(t, analyze(t, "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n"), CodeSubsumedRule)
}

func TestTGDPass(t *testing.T) {
	// Example 11's tgd anchors cleanly: no finding.
	clean := "G(x, z) :- A(x, z).\nG(x, z) :- A(x, y), G(y, z), A(y, w).\nG(x, z) -> A(x, w).\n"
	wantNone(t, analyze(t, clean), CodeTGDCandidate)

	// Anchors, but the matched existential occurs in the head (prop 3) —
	// and prop 1 fails too (LHS is not the head predicate).
	bad := "H(x, z) :- G(x, y), G(y, z).\nG(x, y) -> G(y, z).\n"
	d := want(t, analyze(t, bad), CodeTGDCandidate)
	if d.Severity != Warning {
		t.Fatalf("violating tgd should warn: %+v", d)
	}
	if !strings.Contains(d.Message, "property 1") || !strings.Contains(d.Message, "property 3") {
		t.Fatalf("message should cite properties 1 and 3: %s", d.Message)
	}

	// Matches no rule at all: info.
	none := "G(x, z) :- A(x, z).\nB(x, y) -> C(y, z).\n"
	d = want(t, analyze(t, none), CodeTGDCandidate)
	if d.Severity != Info {
		t.Fatalf("unanchored tgd should be info: %+v", d)
	}
}

func TestDiagnosticsSortedAndStable(t *testing.T) {
	src := "P(x, z) :- E(x, y).\nQ(x) :- E(x, y), !R(x, w).\n"
	first := analyze(t, src)
	second := analyze(t, src)
	if len(first) != len(second) {
		t.Fatalf("unstable diagnostic count: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].String() != second[i].String() {
			t.Fatalf("unstable output at %d: %s vs %s", i, first[i], second[i])
		}
		if i > 0 && first[i].Pos.Before(first[i-1].Pos) {
			t.Fatalf("diagnostics out of order: %s before %s", first[i-1], first[i])
		}
	}
}

func TestAnalyzeProgramWithoutPositions(t *testing.T) {
	p := ast.NewProgram(
		ast.NewRule(ast.NewAtom("P", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("E", ast.Var("x"), ast.Var("y"))),
	)
	ds := AnalyzeProgram(p)
	d := want(t, ds, CodeUnboundHead)
	if d.Pos.IsValid() {
		t.Fatalf("programmatic rule should have unknown position, got %v", d.Pos)
	}
	if !HasErrors(ds) {
		t.Fatal("HasErrors should see the range-restriction error")
	}
}

func TestCleanProgramHasNoFindings(t *testing.T) {
	src := "Anc(x, y) :- Par(x, y).\nAnc(x, z) :- Par(x, y), Anc(y, z).\nPar(1, 2).\nPar(2, 3).\nOut(x) :- Anc(1, x).\n"
	for _, d := range analyze(t, src) {
		if d.Severity != Info {
			t.Fatalf("clean program produced %s", d)
		}
	}
}

func TestPassesMetadata(t *testing.T) {
	ps := Passes()
	if len(ps) < 8 {
		t.Fatalf("want at least 8 passes, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Doc == "" || p.Run == nil || seen[p.Name] {
			t.Fatalf("bad pass metadata: %+v", p)
		}
		seen[p.Name] = true
	}
}

// naiveSubsumption is the pre-bucketing reference: the all-pairs sweep with
// flag-once semantics, kept here as the oracle for the head-indexed pass.
func naiveSubsumption(c *Context) []Diagnostic {
	rules := c.Program.Rules
	canon := make([]string, len(rules))
	for i, r := range rules {
		canon[i] = r.CanonicalString()
	}
	flagged := make(map[int]bool)
	var out []Diagnostic
	flag := func(victim, by int, dup bool) {
		if flagged[victim] {
			return
		}
		flagged[victim] = true
		code, msg, rel := CodeSubsumedRule,
			"rule is θ-subsumed by rule %d; deleting it preserves uniform equivalence", "subsuming rule here"
		if dup {
			code, msg, rel = CodeDuplicateRule,
				"rule duplicates rule %d (identical up to variable renaming)", "first occurrence here"
		}
		out = append(out, Diagnostic{
			Code: code, Severity: Warning, Pos: c.rulePos(victim),
			Message: fmt.Sprintf(msg, by+1),
			Related: []RelatedPos{{Pos: c.rulePos(by), Message: rel}},
		})
	}
	for i := range rules {
		for j := i + 1; j < len(rules); j++ {
			switch {
			case canon[i] == canon[j]:
				flag(j, i, true)
			case ast.SubsumesRule(rules[i], rules[j]):
				flag(j, i, false)
			case ast.SubsumesRule(rules[j], rules[i]):
				flag(i, j, false)
			}
		}
	}
	return out
}

// TestSubsumptionBucketingEquivalence checks the head-predicate index
// changes nothing observable: on random programs with injected duplicate and
// subsumed rules the bucketed pass reports exactly the reference's findings.
func TestSubsumptionBucketingEquivalence(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(5))
		p = workload.InjectRedundantRules(p, rng.Intn(4), rng)
		// Shuffle so victims and subsumers interleave across head buckets.
		rng.Shuffle(len(p.Rules), func(i, j int) { p.Rules[i], p.Rules[j] = p.Rules[j], p.Rules[i] })
		c := &Context{Program: p}
		got := runSubsumption(c)
		want := naiveSubsumption(c)
		SortDiagnostics(got)
		SortDiagnostics(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: bucketed pass differs from all-pairs reference\ngot:  %v\nwant: %v\nprogram:\n%s",
				seed, got, want, p)
		}
	}
}

// TestSubsumptionBucketScaling pins the index's scaling property: a program
// whose rules all have distinct head predicates yields only singleton
// buckets, so the pass performs zero SubsumesRule calls — where the all-pairs
// sweep would do ~n²/2 — and large `datalog vet` runs stay effectively
// linear in this pass.
func TestSubsumptionBucketScaling(t *testing.T) {
	const n = 5000
	p := ast.NewProgram()
	for i := 0; i < n; i++ {
		p.Rules = append(p.Rules,
			parser.MustParseProgram(fmt.Sprintf("P%d(x, y) :- E(x, y), F(y, x).\n", i)).Rules...)
	}
	for _, b := range subsumptionBuckets(p.Rules) {
		if len(b) != 1 {
			t.Fatalf("distinct-head program produced a bucket of size %d", len(b))
		}
	}
	start := time.Now()
	if ds := runSubsumption(&Context{Program: p}); len(ds) != 0 {
		t.Fatalf("distinct-head program produced findings: %v", ds[:1])
	}
	// Generous bound: the bucketed pass is a few ms here; the quadratic scan
	// was tens of seconds.
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("subsumption pass took %v on %d distinct-head rules", d, n)
	}

	// Arity splits buckets too: same predicate name, different arity (the
	// rules are concatenated from two programs; a single source would be
	// rejected by arity validation before this pass could see it).
	mixed := append(
		parser.MustParseProgram("Q(x) :- E(x, x).\n").Rules,
		parser.MustParseProgram("Q(x, y) :- E(x, y).\n").Rules...)
	if got := len(subsumptionBuckets(mixed)); got != 2 {
		t.Fatalf("arity-distinct heads share a bucket: %d buckets, want 2", got)
	}
}
