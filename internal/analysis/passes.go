package analysis

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// runSafety checks range restriction (every head variable bound by the
// positive body, DL0001) and negation safety (every variable of a negated
// atom bound by the positive body, DL0002) — the well-formedness
// assumptions of Section II that ast.Rule.Validate enforces, re-reported
// per variable with positions instead of a single rejection.
func runSafety(c *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range c.Program.Rules {
		bound := make(map[string]bool)
		for _, a := range r.Body {
			a.CollectVars(bound)
		}
		flagged := make(map[string]bool)
		for _, t := range r.Head.Args {
			if t.IsVar && !bound[t.Name] && !flagged[t.Name] {
				flagged[t.Name] = true
				out = append(out, Diagnostic{
					Code: CodeUnboundHead, Severity: Error, Pos: atomPos(r.Head, r),
					Message: fmt.Sprintf("head variable %s of the rule for %s is not bound by the positive body (range restriction)", t.Name, r.Head.Pred),
				})
			}
		}
		for _, a := range r.NegBody {
			for _, t := range a.Args {
				if t.IsVar && !bound[t.Name] && !flagged[t.Name] {
					flagged[t.Name] = true
					out = append(out, Diagnostic{
						Code: CodeUnsafeNegation, Severity: Error, Pos: atomPos(a, r),
						Message: fmt.Sprintf("variable %s of negated atom %s is not bound by the positive body (unsafe negation)", t.Name, c.format(a)),
					})
				}
			}
		}
	}
	return out
}

// runStratify reports negation through recursion (DL0005): every negated
// body atom whose predicate shares a strongly connected component with the
// rule's head closes a cycle with a negative edge, so no stratification
// exists. Each offending atom gets its own diagnostic with the witness
// cycle, related-positioned at the rules realizing the cycle's edges.
func runStratify(c *Context) []Diagnostic {
	if !c.Program.HasNegation() {
		return nil
	}
	g := c.Graph()
	var out []Diagnostic
	for _, r := range c.Program.Rules {
		for _, a := range r.NegBody {
			cycle, ok := g.Cycle(a.Pred, r.Head.Pred)
			if !ok {
				continue
			}
			d := Diagnostic{
				Code: CodeNotStratifiable, Severity: Error, Pos: atomPos(a, r),
				Message: fmt.Sprintf("program is not stratifiable: %s is negated in a rule for %s, but depends on it through the cycle %s",
					a.Pred, r.Head.Pred, strings.Join(cycle, " → ")),
			}
			// cycle[0] → cycle[1] is the negated edge itself; point the
			// remaining edges at rules that realize them.
			for k := 1; k+1 < len(cycle); k++ {
				if pos, ok := c.edgePos(cycle[k], cycle[k+1]); ok {
					d.Related = append(d.Related, RelatedPos{Pos: pos,
						Message: fmt.Sprintf("%s depends on %s here", cycle[k+1], cycle[k])})
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// edgePos locates a body atom realizing the dependence edge from → to.
func (c *Context) edgePos(from, to string) (ast.Pos, bool) {
	for _, r := range c.Program.Rules {
		if r.Head.Pred != to {
			continue
		}
		for _, a := range append(append([]ast.Atom{}, r.Body...), r.NegBody...) {
			if a.Pred == from {
				return atomPos(a, r), true
			}
		}
	}
	return ast.Pos{}, false
}

// runArity checks that every predicate keeps one arity across all its
// occurrences (DL0003 — ast.Program.Validate rejects this; here each
// conflicting site is pinpointed) and that each argument column sticks to
// one constant kind, integer or symbolic (DL0004 — the paper's "constants
// are integers" convention makes a mixed column almost certainly a typo,
// but it is legal, hence a warning).
func runArity(c *Context) []Diagnostic {
	type colState struct {
		intPos, symPos ast.Pos
		intSeen        bool
		symSeen        bool
		reported       bool
	}
	first := make(map[string]Site)
	arityReported := make(map[string]map[int]bool)
	cols := make(map[string][]colState)
	var out []Diagnostic
	for _, s := range c.Sites() {
		pred := s.Atom.Pred
		f, ok := first[pred]
		if !ok {
			first[pred] = s
			cols[pred] = make([]colState, len(s.Atom.Args))
			f = s
		}
		if len(s.Atom.Args) != len(f.Atom.Args) {
			if arityReported[pred] == nil {
				arityReported[pred] = make(map[int]bool)
			}
			if !arityReported[pred][len(s.Atom.Args)] {
				arityReported[pred][len(s.Atom.Args)] = true
				out = append(out, Diagnostic{
					Code: CodeArity, Severity: Error, Pos: s.Pos,
					Message: fmt.Sprintf("%s used with arity %d, but it has arity %d at its first occurrence", pred, len(s.Atom.Args), len(f.Atom.Args)),
					Related: []RelatedPos{{Pos: f.Pos, Message: fmt.Sprintf("%s first used here", pred)}},
				})
			}
			continue
		}
		for i, t := range s.Atom.Args {
			if t.IsVar || ast.IsFrozen(t.Val) || ast.IsNull(t.Val) {
				continue
			}
			cs := &cols[pred][i]
			if ast.IsSym(t.Val) {
				if !cs.symSeen {
					cs.symSeen, cs.symPos = true, s.Pos
				}
			} else {
				if !cs.intSeen {
					cs.intSeen, cs.intPos = true, s.Pos
				}
			}
			if cs.intSeen && cs.symSeen && !cs.reported {
				cs.reported = true
				pos, other, kind := cs.symPos, cs.intPos, "symbolic"
				if cs.symPos.Before(cs.intPos) {
					pos, other, kind = cs.intPos, cs.symPos, "integer"
				}
				out = append(out, Diagnostic{
					Code: CodeConstType, Severity: Warning, Pos: pos,
					Message: fmt.Sprintf("argument %d of %s mixes constant kinds: %s here, the other kind elsewhere", i+1, pred, kind),
					Related: []RelatedPos{{Pos: other, Message: "conflicting constant kind here"}},
				})
			}
		}
	}
	return out
}

// runReachability reports derived predicates no rule chain can populate
// from the source's facts (DL0006: every rule for them transitively
// requires a predicate that is empty unless supplied as extra input) and
// predicates nothing reads (DL0007: a warning for facts no rule or tgd
// ever consults, an info for derived predicates never referenced — those
// are either the program's output or dead code, which the analyzer cannot
// tell apart).
func runReachability(c *Context) []Diagnostic {
	preds := c.Preds()
	derivable := make(map[string]bool)
	for name, u := range preds {
		// Extensional predicates (no rules) may receive facts at evaluation
		// time even when this source gives none; predicates with source
		// facts are populated outright.
		if len(u.HeadRules) == 0 || u.FactCount > 0 {
			derivable[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range c.Program.Rules {
			if derivable[r.Head.Pred] {
				continue
			}
			ok := true
			for _, a := range r.Body {
				if !derivable[a.Pred] {
					ok = false
					break
				}
			}
			// Negated atoms never block derivability: absence is what fires
			// them.
			if ok {
				derivable[r.Head.Pred] = true
				changed = true
			}
		}
	}
	var out []Diagnostic
	for _, name := range c.PredNames() {
		u := preds[name]
		if len(u.HeadRules) > 0 && !derivable[name] {
			out = append(out, Diagnostic{
				Code: CodeUnderivable, Severity: Warning, Pos: c.rulePos(u.HeadRules[0]),
				Message: fmt.Sprintf("%s is underivable: every rule for it depends on a derived predicate with no base case, so it is empty unless %s facts are supplied as input", name, name),
			})
		}
		if u.BodyUses+u.NegUses+u.TGDUses > 0 {
			continue
		}
		switch {
		case u.FactCount > 0 && len(u.HeadRules) == 0:
			out = append(out, Diagnostic{
				Code: CodeUnusedPred, Severity: Warning, Pos: u.FirstFactPos,
				Message: fmt.Sprintf("facts for %s are never used by any rule or tgd", name),
			})
		case len(u.HeadRules) > 0:
			out = append(out, Diagnostic{
				Code: CodeUnusedPred, Severity: Info, Pos: c.rulePos(u.HeadRules[0]),
				Message: fmt.Sprintf("%s is derived but never referenced by another rule or tgd (program output, or dead code)", name),
			})
		}
	}
	return out
}

// runSingleton flags named variables occurring exactly once in a rule
// (DL0008): a one-off variable joins nothing and usually spells a typo or
// an existence check better written with the anonymous '_'. Variables whose
// names start with '_' (the parser's expansion of '_', or deliberately
// underscored names) are exempt, as are head-only variables — those are
// DL0001 errors already.
func runSingleton(c *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range c.Program.Rules {
		count := make(map[string]int)
		where := make(map[string]ast.Atom)
		headOnly := make(map[string]bool)
		for _, t := range r.Head.Args {
			if t.IsVar {
				count[t.Name]++
				headOnly[t.Name] = true
			}
		}
		for _, a := range append(append([]ast.Atom{}, r.Body...), r.NegBody...) {
			for _, t := range a.Args {
				if t.IsVar {
					count[t.Name]++
					headOnly[t.Name] = false
					if _, ok := where[t.Name]; !ok {
						where[t.Name] = a
					}
				}
			}
		}
		// Report in body-occurrence order for determinism.
		seen := make(map[string]bool)
		for _, a := range append(append([]ast.Atom{}, r.Body...), r.NegBody...) {
			for _, t := range a.Args {
				if !t.IsVar || seen[t.Name] {
					continue
				}
				seen[t.Name] = true
				if count[t.Name] != 1 || headOnly[t.Name] || strings.HasPrefix(t.Name, "_") {
					continue
				}
				out = append(out, Diagnostic{
					Code: CodeSingletonVar, Severity: Warning, Pos: atomPos(a, r),
					Message: fmt.Sprintf("variable %s occurs only once in the rule for %s; use _ if the unconstrained match is intentional", t.Name, r.Head.Pred),
				})
			}
		}
	}
	return out
}

// runProduct flags rules whose positive body splits into groups of atoms
// sharing no variables, directly or transitively (DL0009): the join
// between the groups is a cartesian product, which is occasionally meant
// but usually a forgotten join variable. Ground atoms (no variables) are
// membership guards of size ≤ 1 and do not count as a group.
func runProduct(c *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range c.Program.Rules {
		// Union-find over body atoms, keyed through shared variables.
		parent := make([]int, len(r.Body))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		byVar := make(map[string]int)
		for i, a := range r.Body {
			for _, t := range a.Args {
				if !t.IsVar {
					continue
				}
				if j, ok := byVar[t.Name]; ok {
					parent[find(i)] = find(j)
				} else {
					byVar[t.Name] = i
				}
			}
		}
		groups := make(map[int]int) // root -> first atom index
		var roots []int
		for i, a := range r.Body {
			if a.IsGround() {
				continue
			}
			root := find(i)
			if _, ok := groups[root]; !ok {
				groups[root] = i
				roots = append(roots, root)
			}
		}
		if len(roots) < 2 {
			continue
		}
		a, b := r.Body[groups[roots[0]]], r.Body[groups[roots[1]]]
		out = append(out, Diagnostic{
			Code: CodeCartesianProduct, Severity: Warning, Pos: atomPos(b, r),
			Message: fmt.Sprintf("body of the rule for %s is a cartesian product: %s shares no variables with %s (%d independent groups)",
				r.Head.Pred, c.format(b), c.format(a), len(roots)),
			Related: []RelatedPos{{Pos: atomPos(a, r), Message: "disconnected from the group starting here"}},
		})
	}
	return out
}

// runSubsumption reports duplicate rules (DL0010: canonically equal, i.e.
// identical up to variable renaming) and θ-subsumed rules (DL0011: some
// substitution carries another rule's head onto this one's and its body
// into this one's, so deleting this rule preserves uniform equivalence —
// the same test internal/chase uses to skip containment chases). Each rule
// is flagged at most once.
//
// The pairwise sweep runs per head-predicate bucket, not over all rule
// pairs: a substitution maps a rule's head onto another's only when both
// heads share a predicate and arity, and canonical equality implies the
// same, so cross-bucket pairs can never match. Large programs — the shape
// `datalog vet` meets in generated rule sets — are typically wide in
// predicates and shallow per predicate, which turns the quadratic scan into
// one proportional to the sum of squared bucket sizes.
func runSubsumption(c *Context) []Diagnostic {
	rules := c.Program.Rules
	buckets := subsumptionBuckets(rules)
	canon := make(map[int]string)
	flagged := make(map[int]bool)
	var out []Diagnostic
	flag := (func(victim, by int, dup bool) {
		if flagged[victim] {
			return
		}
		flagged[victim] = true
		if dup {
			out = append(out, Diagnostic{
				Code: CodeDuplicateRule, Severity: Warning, Pos: c.rulePos(victim),
				Message: fmt.Sprintf("rule duplicates rule %d (identical up to variable renaming)", by+1),
				Related: []RelatedPos{{Pos: c.rulePos(by), Message: "first occurrence here"}},
			})
			return
		}
		out = append(out, Diagnostic{
			Code: CodeSubsumedRule, Severity: Warning, Pos: c.rulePos(victim),
			Message: fmt.Sprintf("rule is θ-subsumed by rule %d; deleting it preserves uniform equivalence", by+1),
			Related: []RelatedPos{{Pos: c.rulePos(by), Message: "subsuming rule here"}},
		})
	})
	for _, bucket := range buckets {
		if len(bucket) < 2 {
			continue // nothing can pair with a lone rule; skip canonicalizing it
		}
		for _, i := range bucket {
			canon[i] = rules[i].CanonicalString()
		}
		for bi, i := range bucket {
			for _, j := range bucket[bi+1:] {
				switch {
				case canon[i] == canon[j]:
					flag(j, i, true)
				case ast.SubsumesRule(rules[i], rules[j]):
					flag(j, i, false)
				case ast.SubsumesRule(rules[j], rules[i]):
					flag(i, j, false)
				}
			}
		}
	}
	return out
}

// subsumptionBuckets partitions rule indexes by head predicate and arity, in
// first-occurrence order, each bucket keeping program order. It is the index
// that makes runSubsumption near-linear on predicate-wide programs.
func subsumptionBuckets(rules []ast.Rule) [][]int {
	type headKey struct {
		pred  string
		arity int
	}
	at := make(map[headKey]int)
	var buckets [][]int
	for i, r := range rules {
		k := headKey{r.Head.Pred, len(r.Head.Args)}
		bi, ok := at[k]
		if !ok {
			bi = len(buckets)
			at[k] = bi
			buckets = append(buckets, nil)
		}
		buckets[bi] = append(buckets[bi], i)
	}
	return buckets
}

// runTGDCheck measures each tgd against Section XI's candidate properties
// (DL0012). The optimizer derives candidate tgds from a rule body: the LHS
// atoms are body atoms of the head's predicate (property 1), and a
// variable appearing only in the RHS must not occur in the head (property
// 3) nor anywhere in the body outside the RHS atoms (property 2). A tgd in
// a source file that anchors into some rule body but violates a property
// warns — the Section X pipeline can never discharge it as a candidate; a
// tgd anchoring into no rule at all gets an info note.
func runTGDCheck(c *Context) []Diagnostic {
	var out []Diagnostic
	for _, t := range c.TGDs {
		pos := ast.Pos{}
		if len(t.Lhs) > 0 {
			pos = t.Lhs[0].Pos
		}
		anchored := false
		var problems []string
		var anchorRule int
		for ri, r := range c.Program.Rules {
			theta := make(ast.Subst)
			lhsIdx, rhsIdx, ok := anchor(t, r, theta)
			if !ok {
				continue
			}
			anchored, anchorRule = true, ri
			problems = tgdProblems(t, r, lhsIdx, rhsIdx)
			if len(problems) == 0 {
				break // a clean anchor wins; no finding for this tgd
			}
		}
		switch {
		case !anchored:
			out = append(out, Diagnostic{
				Code: CodeTGDCandidate, Severity: Info, Pos: pos,
				Message: fmt.Sprintf("tgd %s matches no rule body; it constrains inputs but can never arise as a Section XI candidate", c.formatTGD(t)),
			})
		case len(problems) > 0:
			out = append(out, Diagnostic{
				Code: CodeTGDCandidate, Severity: Warning, Pos: pos,
				Message: fmt.Sprintf("tgd %s anchors into the rule for %s but violates Section XI %s", c.formatTGD(t), c.Program.Rules[anchorRule].Head.Pred, strings.Join(problems, "; ")),
				Related: []RelatedPos{{Pos: c.rulePos(anchorRule), Message: "anchoring rule here"}},
			})
		}
	}
	return out
}

func (c *Context) formatTGD(t ast.TGD) string {
	return ast.FormatAtoms(t.Lhs, c.Symbols) + " -> " + ast.FormatAtoms(t.Rhs, c.Symbols)
}

// anchor matches the tgd's LHS then RHS atoms onto distinct body atoms of
// r under one shared substitution (backtracking, bounded steps). It
// returns the matched body indexes per side.
func anchor(t ast.TGD, r ast.Rule, theta ast.Subst) (lhsIdx, rhsIdx []int, ok bool) {
	pattern := append(append([]ast.Atom{}, t.Lhs...), t.Rhs...)
	choice := make([]int, len(pattern))
	used := make([]bool, len(r.Body))
	steps := 10000
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(pattern) {
			return true
		}
		for j, b := range r.Body {
			if used[j] {
				continue
			}
			if steps <= 0 {
				return false
			}
			steps--
			added, ok := ast.MatchAtomInto(pattern[k], b, theta)
			if !ok {
				continue
			}
			used[j], choice[k] = true, j
			if try(k + 1) {
				return true
			}
			used[j] = false
			for _, v := range added {
				delete(theta, v)
			}
		}
		return false
	}
	if !try(0) {
		return nil, nil, false
	}
	return choice[:len(t.Lhs)], choice[len(t.Lhs):], true
}

// tgdProblems evaluates Section XI properties 1–3 for a tgd anchored at
// body atoms lhsIdx/rhsIdx of r, returning a description per violated
// property.
func tgdProblems(t ast.TGD, r ast.Rule, lhsIdx, rhsIdx []int) []string {
	var problems []string
	for _, i := range lhsIdx {
		if r.Body[i].Pred != r.Head.Pred {
			problems = append(problems, fmt.Sprintf("property 1: LHS atom %s is not a %s atom (the head predicate)", r.Body[i], r.Head.Pred))
			break
		}
	}
	lhsVars := make(map[string]bool)
	for _, i := range lhsIdx {
		r.Body[i].CollectVars(lhsVars)
	}
	headVars := make(map[string]bool)
	r.Head.CollectVars(headVars)
	inRHS := make(map[int]bool)
	for _, i := range rhsIdx {
		inRHS[i] = true
	}
	prop2 := false
	prop3 := false
	for _, i := range rhsIdx {
		for _, v := range r.Body[i].Vars() {
			if lhsVars[v] {
				continue
			}
			if headVars[v] && !prop3 {
				prop3 = true
				problems = append(problems, fmt.Sprintf("property 3: existential variable (matching %s) occurs in the head", v))
			}
			if prop2 {
				continue
			}
			for j, b := range r.Body {
				if !inRHS[j] && b.HasVar(v) {
					prop2 = true
					problems = append(problems, fmt.Sprintf("property 2: existential variable (matching %s) occurs in the body outside the RHS atoms", v))
					break
				}
			}
		}
	}
	return problems
}
