// Package workload generates the synthetic programs and extensional
// databases used by the experiment suite (DESIGN.md, experiments E1–E10).
// The paper has no empirical section, so these workloads operationalize its
// prose claims: programs with a controlled amount of injected redundancy
// (for measuring the Figs. 1–2 minimizer), graph EDBs of controlled shape
// and size (for measuring evaluation cost), and layered programs for the
// scaling experiments.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
)

// --- EDB generators -------------------------------------------------------

func edge(pred string, a, b int64) ast.GroundAtom {
	return ast.GroundAtom{Pred: pred, Args: []ast.Const{ast.Int(a), ast.Int(b)}}
}

// Chain returns the EDB {pred(0,1), …, pred(n-1,n)}.
func Chain(pred string, n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		d.Add(edge(pred, int64(i), int64(i+1)))
	}
	return d
}

// Cycle returns a directed n-cycle.
func Cycle(pred string, n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		d.Add(edge(pred, int64(i), int64((i+1)%n)))
	}
	return d
}

// RandomDigraph returns a digraph with the given node count and (up to)
// edge count, sampled uniformly with the given seed. Duplicate edges are
// deduplicated, so the result may hold slightly fewer edges.
func RandomDigraph(pred string, nodes, edges int, seed int64) *db.Database {
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	for e := 0; e < edges; e++ {
		d.Add(edge(pred, int64(rng.Intn(nodes)), int64(rng.Intn(nodes))))
	}
	return d
}

// Tree returns a complete tree with the given fanout and depth; edges point
// from parent to child. Nodes are numbered in BFS order from 0.
func Tree(pred string, fanout, depth int) *db.Database {
	d := db.New()
	next := int64(1)
	frontier := []int64{0}
	for level := 0; level < depth; level++ {
		var newFrontier []int64
		for _, p := range frontier {
			for c := 0; c < fanout; c++ {
				d.Add(edge(pred, p, next))
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	return d
}

// Grid returns a w×h grid with rightward and downward edges; node (i,j) is
// numbered i*h + j.
func Grid(pred string, w, h int) *db.Database {
	d := db.New()
	id := func(i, j int) int64 { return int64(i*h + j) }
	for i := 0; i < w; i++ {
		for j := 0; j < h; j++ {
			if i+1 < w {
				d.Add(edge(pred, id(i, j), id(i+1, j)))
			}
			if j+1 < h {
				d.Add(edge(pred, id(i, j), id(i, j+1)))
			}
		}
	}
	return d
}

// Complete returns the complete digraph on n nodes (self-loops excluded).
func Complete(pred string, n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.Add(edge(pred, int64(i), int64(j)))
			}
		}
	}
	return d
}

// --- Program generators ----------------------------------------------------

// TransitiveClosure returns Example 1's program (doubled recursive rule).
func TransitiveClosure() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
}

// TransitiveClosureLinear returns Example 4's right-linear variant.
func TransitiveClosureLinear() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- A(x, y), G(y, z).
	`)
}

// TransitiveClosureGuarded returns Example 11's P1: transitive closure with
// the redundant-under-equivalence guard A(y,w) in the recursive rule.
func TransitiveClosureGuarded() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
}

// Example19Program returns Example 19's P1.
func Example19Program() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(z).
		G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
	`)
}

// Ancestor returns the ancestor program over Par.
func Ancestor() *ast.Program {
	return parser.MustParseProgram(`
		Anc(x, y) :- Par(x, y).
		Anc(x, z) :- Par(x, y), Anc(y, z).
	`)
}

// SameGeneration returns the classic same-generation program.
func SameGeneration() *ast.Program {
	return parser.MustParseProgram(`
		Sg(x, y) :- Flat(x, y).
		Sg(x, y) :- Up(x, u), Sg(u, v), Down(v, y).
	`)
}

// Layered returns a program with n chained IDB layers:
//
//	P1(x,z) :- E(x,z).
//	Pi(x,z) :- Pi-1(x,y), E(y,z).        (i = 2..n)
//
// used by the scaling experiments: program size grows linearly with n.
func Layered(n int) *ast.Program {
	p := ast.NewProgram()
	p.Rules = append(p.Rules, parser.MustParseProgram(`P1(x, z) :- E(x, z).`).Rules...)
	for i := 2; i <= n; i++ {
		src := fmt.Sprintf(`P%d(x, z) :- P%d(x, y), E(y, z).`, i, i-1)
		p.Rules = append(p.Rules, parser.MustParseProgram(src).Rules...)
	}
	return p
}

// --- Redundancy injection ---------------------------------------------------

// InjectRedundantAtoms returns a copy of r with k extra body atoms, each a
// copy of an existing body atom with one argument position replaced by a
// fresh variable. Every injected atom is subsumed by its source atom, so it
// is redundant under uniform equivalence and the Fig. 1 minimizer can
// always remove it.
func InjectRedundantAtoms(r ast.Rule, k int, rng *rand.Rand) ast.Rule {
	out := r.Clone()
	fresh := 0
	for i := 0; i < k; i++ {
		if len(out.Body) == 0 {
			break
		}
		src := out.Body[rng.Intn(len(out.Body))].Clone()
		if len(src.Args) == 0 {
			continue
		}
		pos := rng.Intn(len(src.Args))
		src.Args[pos] = ast.Var(fmt.Sprintf("red%d", fresh))
		fresh++
		out.Body = append(out.Body, src)
	}
	return out
}

// InjectRedundantAtomsProgram applies InjectRedundantAtoms to every rule of
// p.
func InjectRedundantAtomsProgram(p *ast.Program, kPerRule int, rng *rand.Rand) *ast.Program {
	out := p.Clone()
	for i := range out.Rules {
		out.Rules[i] = InjectRedundantAtoms(out.Rules[i], kPerRule, rng)
	}
	return out
}

// InjectRedundantRules returns a copy of p with k extra rules, each a
// specialization of an existing rule (renamed variables plus one subsumed
// extra atom), hence uniformly contained in the original and removable by
// the Fig. 2 rule phase.
func InjectRedundantRules(p *ast.Program, k int, rng *rand.Rand) *ast.Program {
	out := p.Clone()
	if len(p.Rules) == 0 {
		return out
	}
	for i := 0; i < k; i++ {
		src := p.Rules[rng.Intn(len(p.Rules))]
		tag := fmt.Sprintf("c%d", i)
		dup := src.Rename(func(v string) string { return v + tag })
		dup = InjectRedundantAtoms(dup, 1, rng)
		out.Rules = append(out.Rules, dup)
	}
	return out
}

// RandomProgram generates a random valid (range-restricted) pure-Datalog
// program for property-based testing: nRules rules over binary EDB
// predicates A/B and IDB predicates P/Q, with bodies of 1..3 atoms and the
// head variables drawn from the body. The same rng state yields the same
// program.
func RandomProgram(rng *rand.Rand, nRules int) *ast.Program {
	vars := []string{"x", "y", "z", "w"}
	edb := []string{"A", "B"}
	idbPreds := []string{"P", "Q"}
	p := ast.NewProgram()
	for i := 0; i < nRules; i++ {
		n := 1 + rng.Intn(3)
		body := make([]ast.Atom, n)
		var bodyVars []string
		for j := range body {
			pred := edb[rng.Intn(len(edb))]
			// Occasionally reference an IDB predicate for recursion, but
			// only ones guaranteed to be intentional (rule 0 defines P).
			if i > 0 && rng.Intn(3) == 0 {
				pred = idbPreds[rng.Intn(len(idbPreds))%min(i, len(idbPreds))]
			}
			v1 := vars[rng.Intn(len(vars))]
			v2 := vars[rng.Intn(len(vars))]
			if rng.Intn(8) == 0 {
				body[j] = ast.NewAtom(pred, ast.Var(v1), ast.IntTerm(int64(rng.Intn(3))))
				bodyVars = append(bodyVars, v1)
			} else {
				body[j] = ast.NewAtom(pred, ast.Var(v1), ast.Var(v2))
				bodyVars = append(bodyVars, v1, v2)
			}
		}
		head := ast.NewAtom(idbPreds[min(i, len(idbPreds)-1)],
			ast.Var(bodyVars[rng.Intn(len(bodyVars))]),
			ast.Var(bodyVars[rng.Intn(len(bodyVars))]))
		p.Rules = append(p.Rules, ast.Rule{Head: head, Body: body})
	}
	return p
}

// RandomDB generates a random database over the extensional predicates of
// p, with constants drawn from [0, domain).
func RandomDB(rng *rand.Rand, p *ast.Program, domain, factsPerPred int) *db.Database {
	d := db.New()
	idb := p.IDBPredicates()
	for _, sig := range p.Predicates() {
		if idb[sig.Name] {
			continue
		}
		for k := 0; k < factsPerPred; k++ {
			args := make([]ast.Const, sig.Arity)
			for i := range args {
				args[i] = ast.Int(int64(rng.Intn(domain)))
			}
			d.AddTuple(sig.Name, args)
		}
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
