package workload

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
	"repro/internal/minimize"
)

func TestChain(t *testing.T) {
	d := Chain("A", 5)
	if d.Len() != 5 {
		t.Fatalf("chain has %d edges", d.Len())
	}
	if !d.HasTuple("A", []ast.Const{ast.Int(0), ast.Int(1)}) {
		t.Fatal("missing edge 0->1")
	}
	if d.HasTuple("A", []ast.Const{ast.Int(5), ast.Int(6)}) {
		t.Fatal("phantom edge 5->6")
	}
}

func TestCycleTreeGridComplete(t *testing.T) {
	if got := Cycle("A", 4).Len(); got != 4 {
		t.Fatalf("cycle: %d", got)
	}
	// Complete tree with fanout 2, depth 3: 2 + 4 + 8 = 14 edges.
	if got := Tree("A", 2, 3).Len(); got != 14 {
		t.Fatalf("tree: %d", got)
	}
	// 3x3 grid: 2*3 + 3*2 = 12 edges.
	if got := Grid("A", 3, 3).Len(); got != 12 {
		t.Fatalf("grid: %d", got)
	}
	if got := Complete("A", 4).Len(); got != 12 {
		t.Fatalf("complete: %d", got)
	}
}

func TestRandomDigraphDeterministic(t *testing.T) {
	a := RandomDigraph("A", 10, 30, 7)
	b := RandomDigraph("A", 10, 30, 7)
	if !a.Equal(b) {
		t.Fatal("same seed, different graphs")
	}
	c := RandomDigraph("A", 10, 30, 8)
	if a.Equal(c) {
		t.Fatal("different seeds, same graph (very unlikely)")
	}
}

func TestProgramsValid(t *testing.T) {
	progs := map[string]interface{ Validate() error }{
		"tc":        TransitiveClosure(),
		"tcLinear":  TransitiveClosureLinear(),
		"tcGuarded": TransitiveClosureGuarded(),
		"ex19":      Example19Program(),
		"ancestor":  Ancestor(),
		"samegen":   SameGeneration(),
		"layered":   Layered(6),
	}
	for name, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLayeredShape(t *testing.T) {
	p := Layered(4)
	if len(p.Rules) != 4 {
		t.Fatalf("layered(4) has %d rules", len(p.Rules))
	}
	// Evaluating over a chain: P4 holds paths of length exactly 4.
	out := eval.MustEval(p, Chain("E", 6))
	rel := out.Relation("P4")
	if rel == nil || rel.Len() != 3 {
		t.Fatalf("P4 over 6-chain: %v", out)
	}
}

func TestInjectRedundantAtomsAreRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := TransitiveClosure()
	for k := 1; k <= 4; k++ {
		r := InjectRedundantAtoms(base.Rules[1], k, rng)
		if len(r.Body) != 2+k {
			t.Fatalf("k=%d: body size %d", k, len(r.Body))
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("injected rule invalid: %v", err)
		}
		// The injected rule is uniformly equivalent to the original.
		eq, err := chase.UniformlyEquivalent(
			base.ReplaceRule(1, r), base)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("k=%d: injection changed semantics:\n%v", k, r)
		}
		// And the minimizer removes exactly k atoms.
		min, trace, err := minimize.Rule(r, minimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if trace.AtomsRemoved() != k {
			t.Fatalf("k=%d: minimizer removed %d atoms from %v giving %v", k, trace.AtomsRemoved(), r, min)
		}
	}
}

func TestInjectRedundantRulesAreRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := TransitiveClosure()
	for k := 1; k <= 3; k++ {
		p := InjectRedundantRules(base, k, rng)
		if len(p.Rules) != 2+k {
			t.Fatalf("k=%d: %d rules", k, len(p.Rules))
		}
		eq, err := chase.UniformlyEquivalent(p, base)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("k=%d: injected rules changed semantics:\n%v", k, p)
		}
		min, trace, err := minimize.Program(p, minimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(min.Rules) != 2 {
			t.Fatalf("k=%d: minimized to %d rules (removed %d rules, %d atoms)",
				k, len(min.Rules), trace.RulesRemoved(), trace.AtomsRemoved())
		}
	}
}

func TestInjectIntoProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := InjectRedundantAtomsProgram(TransitiveClosure(), 2, rng)
	if p.BodyAtomCount() != TransitiveClosure().BodyAtomCount()+4 {
		t.Fatalf("BodyAtomCount = %d", p.BodyAtomCount())
	}
}

func TestRandomProgramAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p := RandomProgram(rng, 1+rng.Intn(5))
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random program: %v\n%v", trial, err, p)
		}
	}
}

func TestRandomDBRespectsSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := RandomProgram(rng, 3)
	d := RandomDB(rng, p, 5, 4)
	idb := p.IDBPredicates()
	for _, f := range d.Facts() {
		if idb[f.Pred] {
			t.Fatalf("RandomDB generated IDB fact %v", f)
		}
		for _, c := range f.Args {
			if int64(c) < 0 || int64(c) >= 5 {
				t.Fatalf("constant out of domain: %v", f)
			}
		}
	}
}
