package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/ast"
	"repro/internal/core"
)

// Changefeed subscriptions: a tenant's materialized output, maintained
// incrementally across mutation batches (core.View over eval's
// counting/DRed maintenance), streamed as ordered diff frames over chunked
// NDJSON.
//
// One liveView exists per (tenant, program version) with at least one past
// subscriber: the first subscription materializes the view from the
// tenant's latest database version, and every later mutation batch applies
// through it under the entry lock — so frame order is mutation order, and
// the seq numbers of one view's frames have no gaps. Subscribers are
// buffered channels; a subscriber whose buffer is full when a frame fans
// out is dropped with a typed slow_consumer error frame rather than letting
// one stalled reader block the entry lock or grow queues without bound.

// subscriberBuffer is the per-subscriber frame buffer: how many undelivered
// diff frames a consumer may fall behind before it is dropped.
const subscriberBuffer = 16

// viewFrame is one NDJSON changefeed frame. The first frame of every
// subscription is a snapshot (the full materialized output, sorted);
// subsequent frames carry the exact net output diff of one mutation batch
// in canonical order. Seq increments per applied batch on the view,
// DBVersion is the tenant database version the frame reflects.
type viewFrame struct {
	Seq       uint64   `json:"seq"`
	DBVersion int      `json:"db_version"`
	Snapshot  bool     `json:"snapshot,omitempty"`
	Facts     []string `json:"facts,omitempty"`
	Added     []string `json:"added,omitempty"`
	Removed   []string `json:"removed,omitempty"`
}

// liveView is one maintained materialization feeding subscribers: the
// per-tenant incremental counterpart of a programVersion. Guarded by the
// entry mutex.
type liveView struct {
	pv        *programVersion
	view      *core.View
	seq       uint64
	dbVersion int
	subs      map[*subscriber]bool
}

// subscriber is one changefeed consumer. ch is closed (after reason is set)
// by the fan-out path under the entry mutex — the close is the
// happens-before edge that lets the handler read reason safely.
type subscriber struct {
	ch     chan viewFrame
	reason string // "" = live; "slow_consumer" / "view_error" after close
}

// failLocked marks the subscriber dead and closes its channel; callers hold
// the entry mutex.
func (sub *subscriber) failLocked(reason string) {
	sub.reason = reason
	close(sub.ch)
}

// renderDiffLocked renders diff facts under the entry's symbol table,
// preserving the diff's canonical order; callers hold e.mu.
func (e *programEntry) renderDiffLocked(gs []ast.GroundAtom) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Format(e.syms)
	}
	return out
}

// broadcastLocked applies one mutation batch to every live view of the
// tenant and fans the resulting diff frames out to their subscribers;
// callers hold e.mu. A view that fails to apply (cancellation cannot happen
// here — maintenance runs under the background context — so this is a
// genuine error) tears down with view_error frames to its subscribers. A
// subscriber with no buffer space left is dropped with slow_consumer.
func (e *programEntry) broadcastLocked(t *tenantState, dbVersion int, delta core.DatabaseDelta) {
	for ver, lv := range t.views {
		diff, _, err := lv.view.Apply(context.Background(), delta)
		if err != nil {
			for sub := range lv.subs {
				sub.failLocked("view_error")
			}
			delete(t.views, ver)
			continue
		}
		lv.seq++
		lv.dbVersion = dbVersion
		f := viewFrame{
			Seq:       lv.seq,
			DBVersion: dbVersion,
			Added:     e.renderDiffLocked(diff.Added),
			Removed:   e.renderDiffLocked(diff.Removed),
		}
		for sub := range lv.subs {
			select {
			case sub.ch <- f:
			default:
				sub.failLocked("slow_consumer")
				delete(lv.subs, sub)
			}
		}
	}
}

// handleSubscribe opens a changefeed: it registers the subscriber on the
// tenant's live view for the requested program version (materializing the
// view on first use; force_dred selects delete-rederive for every stratum
// and applies to the view's first subscriber), writes a snapshot frame, and
// then streams one diff frame per mutation batch until the client
// disconnects or the subscriber is dropped.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		Tenant         string `json:"tenant"`
		ProgramVersion int    `json:"program_version"`
		ForceDRed      bool   `json:"force_dred"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	name := r.PathValue("name")
	e := s.entry(name)
	if e == nil {
		s.writeError(w, errUnknownProgram(name))
		return
	}
	pv, err := e.versionEntry(req.ProgramVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, fmt.Errorf("service: streaming unsupported by connection"))
		return
	}

	e.mu.Lock()
	t := e.tenants[req.Tenant]
	if t == nil || t.versions[t.latest] == nil {
		e.mu.Unlock()
		s.writeError(w, &RequestError{Status: 404, Code: "unknown_tenant",
			Err: fmt.Errorf("service: program %q has no tenant %q", name, req.Tenant)})
		return
	}
	lv := t.views[pv.version]
	if lv == nil {
		view, _, err := pv.session.Materialize(context.Background(), t.versions[t.latest].DB(),
			core.MaintainOptions{ForceDRed: req.ForceDRed})
		if err != nil {
			e.mu.Unlock()
			s.writeError(w, err)
			return
		}
		lv = &liveView{pv: pv, view: view, dbVersion: t.latest, subs: make(map[*subscriber]bool)}
		t.views[pv.version] = lv
	}
	sub := &subscriber{ch: make(chan viewFrame, subscriberBuffer)}
	lv.subs[sub] = true
	// The snapshot frame is built under the same lock that registered the
	// subscriber, so the stream has no gap: every batch after this snapshot
	// arrives as a frame with a consecutive seq.
	snap := viewFrame{
		Seq:       lv.seq,
		DBVersion: lv.dbVersion,
		Snapshot:  true,
		Facts:     e.formatFactsLocked(lv.view.Output()),
	}
	e.mu.Unlock()

	defer func() {
		e.mu.Lock()
		if cur := t.views[pv.version]; cur != nil {
			delete(cur.subs, sub)
		}
		e.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(snap)
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case f, open := <-sub.ch:
			if !open {
				// Dropped under the entry lock; reason is safe to read after
				// the close.
				_ = enc.Encode(map[string]string{
					"error":   sub.reason,
					"message": fmt.Sprintf("service: subscription dropped: %s", sub.reason),
				})
				flusher.Flush()
				return
			}
			_ = enc.Encode(f)
			flusher.Flush()
		}
	}
}
