package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

// newOracleSession prepares a program exactly as a one-shot library caller
// would.
func newOracleSession(p *ast.Program) (*eval.Prepared, error) {
	return eval.Prepare(p, eval.Options{})
}

const authzProgram = `
	Member(u, g) :- Direct(u, g).
	Member(u, g) :- Member(u, h), Subgroup(h, g).
	HasRole(u, r) :- Member(u, g), Grant(g, r).
	CanRead(u, d) :- HasRole(u, r), Allows(r, d).
`

const tenantAFacts = `
	Direct("ann", "eng").
	Subgroup("eng", "staff").
	Grant("staff", "viewer").
	Allows("viewer", "handbook").
`

const tenantAFacts2 = `
	Grant("eng", "editor").
	Allows("editor", "designdoc").
`

const tenantBFacts = `
	Direct("bob", "ops").
	Subgroup("ops", "staff").
	Grant("staff", "viewer").
	Allows("viewer", "runbook").
`

// post issues a JSON request and decodes the JSON response.
func post(t *testing.T, ts *httptest.Server, path string, body any) (int, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", path, err)
	}
	return resp.StatusCode, out
}

// oracleRows computes, through one-shot library calls, the formatted sorted
// rows the service must return for query over program+facts — parsing
// program then fact sets in the same order the service did, so symbols
// intern to the same constants.
func oracleRows(t *testing.T, program string, factSets []string, query string) []string {
	t.Helper()
	syms := ast.NewSymbolTable()
	res, err := parser.ParseWithSymbols(program, syms)
	if err != nil {
		t.Fatal(err)
	}
	d := db.New()
	for _, fs := range factSets {
		fres, err := parser.ParseWithSymbols(fs, syms)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fres.Facts {
			d.AddTuple(f.Pred, f.Args)
		}
	}
	atom, err := parser.ParseAtomWithSymbols(query, syms)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := newOracleSession(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(d, atom)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = ast.FormatConst(c, syms)
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

// respRows flattens a JSON rows payload to "a,b" strings (already sorted by
// the server).
func respRows(t *testing.T, resp map[string]any) []string {
	t.Helper()
	raw, ok := resp["rows"].([]any)
	if !ok {
		t.Fatalf("response has no rows: %v", resp)
	}
	out := make([]string, len(raw))
	for i, r := range raw {
		cells := r.([]any)
		parts := make([]string, len(cells))
		for j, c := range cells {
			parts[j] = c.(string)
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

// TestServeE2ETwoTenants is the acceptance scenario: two tenants issue
// concurrent eval, minimize and compare requests over frozen snapshots of
// different database versions of one named program, and every result is
// byte-identical to a one-shot library call. Run under -race in CI.
func TestServeE2ETwoTenants(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram})
	if code != 200 {
		t.Fatalf("register: %d %v", code, resp)
	}
	// A redundant second version for compare: duplicate atom in HasRole.
	redundant := strings.Replace(authzProgram, "Grant(g, r).", "Grant(g, r), Grant(g, r).", 1)
	code, resp = post(t, ts, "/v1/programs/authz", map[string]any{"source": redundant})
	if code != 200 || resp["version"].(float64) != 2 {
		t.Fatalf("register v2: %d %v", code, resp)
	}

	if code, resp = post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "acme", "facts": tenantAFacts}); code != 200 {
		t.Fatalf("facts acme: %d %v", code, resp)
	}
	if code, resp = post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "acme", "facts": tenantAFacts2}); code != 200 {
		t.Fatalf("facts acme v2: %d %v", code, resp)
	}
	if v := resp["db_version"].(float64); v != 2 {
		t.Fatalf("acme db_version = %v, want 2", v)
	}
	if code, resp = post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "globex", "facts": tenantBFacts}); code != 200 {
		t.Fatalf("facts globex: %d %v", code, resp)
	}

	query := "CanRead(u, d)"
	wantAcmeV1 := oracleRows(t, authzProgram, []string{tenantAFacts}, query)
	wantAcmeV2 := oracleRows(t, authzProgram, []string{tenantAFacts, tenantAFacts2}, query)
	// globex facts intern after acme's in the shared entry table; the
	// oracle mirrors that by interning all fact sets, building only globex's.
	wantGlobex := oracleRowsSubset(t, authzProgram, []string{tenantAFacts, tenantAFacts2}, tenantBFacts, query)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch (g + i) % 4 {
				case 0: // acme, pinned old snapshot version
					code, resp := post(t, ts, "/v1/programs/authz/eval",
						map[string]any{"tenant": "acme", "query": query, "db_version": 1})
					if code != 200 {
						errs <- fmt.Sprintf("eval acme v1: %d %v", code, resp)
						return
					}
					if got := respRows(t, resp); !equalStrings(got, wantAcmeV1) {
						errs <- fmt.Sprintf("acme v1 rows = %v, want %v", got, wantAcmeV1)
					}
				case 1: // acme, latest
					code, resp := post(t, ts, "/v1/programs/authz/eval",
						map[string]any{"tenant": "acme", "query": query})
					if code != 200 {
						errs <- fmt.Sprintf("eval acme: %d %v", code, resp)
						return
					}
					if got := respRows(t, resp); !equalStrings(got, wantAcmeV2) {
						errs <- fmt.Sprintf("acme rows = %v, want %v", got, wantAcmeV2)
					}
				case 2: // globex
					code, resp := post(t, ts, "/v1/programs/authz/eval",
						map[string]any{"tenant": "globex", "query": query})
					if code != 200 {
						errs <- fmt.Sprintf("eval globex: %d %v", code, resp)
						return
					}
					if got := respRows(t, resp); !equalStrings(got, wantGlobex) {
						errs <- fmt.Sprintf("globex rows = %v, want %v", got, wantGlobex)
					}
				case 3: // minimize v2 and compare v1 vs v2
					code, resp := post(t, ts, "/v1/programs/authz/minimize",
						map[string]any{"program_version": 2})
					if code != 200 {
						errs <- fmt.Sprintf("minimize: %d %v", code, resp)
						return
					}
					if removed := resp["atoms_removed"].(float64); removed < 1 {
						errs <- fmt.Sprintf("minimize removed %v atoms, want ≥ 1", removed)
					}
					code, resp = post(t, ts, "/v1/programs/authz/compare",
						map[string]any{"version_a": 1, "version_b": 2})
					if code != 200 {
						errs <- fmt.Sprintf("compare: %d %v", code, resp)
						return
					}
					if eq := resp["equivalent"].(bool); !eq {
						errs <- "compare: v1 and v2 not equivalent"
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// statz reflects the traffic and the shared stores.
	code, stz := get(t, ts, "/v1/statz")
	if code != 200 {
		t.Fatalf("statz: %d %v", code, stz)
	}
	if reqs := stz["requests"].(map[string]any)["total"].(float64); reqs < 10 {
		t.Fatalf("statz total requests = %v, want ≥ 10", reqs)
	}
}

// oracleRowsSubset is oracleRows with warm-up fact sets interned first (to
// mirror the server's shared symbol table) but only the final set loaded.
func oracleRowsSubset(t *testing.T, program string, warm []string, load string, query string) []string {
	t.Helper()
	syms := ast.NewSymbolTable()
	res, err := parser.ParseWithSymbols(program, syms)
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range warm {
		if _, err := parser.ParseWithSymbols(fs, syms); err != nil {
			t.Fatal(err)
		}
	}
	fres, err := parser.ParseWithSymbols(load, syms)
	if err != nil {
		t.Fatal(err)
	}
	d := db.New()
	for _, f := range fres.Facts {
		d.AddTuple(f.Pred, f.Args)
	}
	atom, err := parser.ParseAtomWithSymbols(query, syms)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := newOracleSession(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(d, atom)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = ast.FormatConst(c, syms)
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeBudgetAndDeadline exercises the typed error mapping: an expired
// deadline returns 504 deadline_exceeded, an exhausted derived-fact budget
// returns 422 budget_exhausted — and neither poisons the shared stores: the
// same request re-issued without the budget succeeds with correct rows.
func TestServeBudgetAndDeadline(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A chain program whose closure is quadratic in the chain length —
	// enough derived facts for budgets and deadlines to bite.
	prog := "T(x,y) :- E(x,y).\nT(x,z) :- E(x,y), T(y,z).\n"
	var facts strings.Builder
	for i := 0; i < 220; i++ {
		fmt.Fprintf(&facts, "E(%d,%d).\n", i, i+1)
	}
	if code, resp := post(t, ts, "/v1/programs/chain", map[string]any{"source": prog}); code != 200 {
		t.Fatalf("register: %d %v", code, resp)
	}
	if code, resp := post(t, ts, "/v1/programs/chain/facts", map[string]any{"tenant": "t1", "facts": facts.String()}); code != 200 {
		t.Fatalf("facts: %d %v", code, resp)
	}

	// Derived-fact budget: the closure needs ~24k facts; 100 cannot do.
	code, resp := post(t, ts, "/v1/programs/chain/eval",
		map[string]any{"tenant": "t1", "budget": map[string]any{"max_derived": 100}})
	if code != 422 {
		t.Fatalf("budget eval: code %d (%v), want 422", code, resp)
	}
	if resp["error"] != "budget_exhausted" {
		t.Fatalf("budget error code = %v, want budget_exhausted", resp["error"])
	}

	// Deadline: 0 < timeout < closure time. A 1ms budget expires during
	// the fixpoint (the closure takes well over 1ms on any hardware this
	// runs on).
	code, resp = post(t, ts, "/v1/programs/chain/eval",
		map[string]any{"tenant": "t1", "query": "T(0, x)", "budget": map[string]any{"timeout_ms": 1}})
	if code != 504 && code != 499 {
		t.Fatalf("deadline eval: code %d (%v), want 504/499", code, resp)
	}

	// No poisoning: the same query without a budget returns the full
	// closure from the same shared plan cache.
	code, resp = post(t, ts, "/v1/programs/chain/eval",
		map[string]any{"tenant": "t1", "query": "T(0, x)"})
	if code != 200 {
		t.Fatalf("clean eval after cancellation: %d %v", code, resp)
	}
	if rows := respRows(t, resp); len(rows) != 220 {
		t.Fatalf("clean eval rows = %d, want 220", len(rows))
	}
}

// TestStatzReportsInjectedCache pins /statz to the plan cache the server's
// sessions actually prepare through: a server constructed over an injected
// cache must report that cache's counters, not the process-wide default's.
func TestStatzReportsInjectedCache(t *testing.T) {
	cache := core.NewPlanCache(16)
	s := New(core.SessionOptions{PlanCache: cache})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram}); code != 200 {
		t.Fatalf("register: %d %v", code, resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "acme", "facts": tenantAFacts}); code != 200 {
		t.Fatalf("facts: %d %v", code, resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/minimize", map[string]any{}); code != 200 {
		t.Fatalf("minimize: %d %v", code, resp)
	}

	want := cache.Stats()
	if want.Entries == 0 || want.Misses == 0 {
		t.Fatalf("injected cache saw no traffic: %+v", want)
	}
	code, stz := get(t, ts, "/v1/statz")
	if code != 200 {
		t.Fatalf("statz: %d %v", code, stz)
	}
	pc := stz["plan_cache"].(map[string]any)
	if got := int(pc["entries"].(float64)); got != want.Entries {
		t.Fatalf("statz plan_cache entries = %d, want %d (the injected cache's)", got, want.Entries)
	}
	if got := uint64(pc["misses"].(float64)); got != want.Misses {
		t.Fatalf("statz plan_cache misses = %d, want %d (the injected cache's)", got, want.Misses)
	}
	if got := uint64(pc["hits"].(float64)); got != want.Hits {
		t.Fatalf("statz plan_cache hits = %d, want %d (the injected cache's)", got, want.Hits)
	}
}

// TestServeErrors pins the 404/400 envelope.
func TestServeErrors(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, resp := post(t, ts, "/v1/programs/nope/eval", map[string]any{"tenant": "t"})
	if code != 404 || resp["error"] != "unknown_program" {
		t.Fatalf("unknown program: %d %v", code, resp)
	}
	if code, resp = post(t, ts, "/v1/programs/p", map[string]any{"source": "T(x :-"}); code != 400 || resp["error"] != "parse_error" {
		t.Fatalf("parse error: %d %v", code, resp)
	}
	if code, resp = post(t, ts, "/v1/programs/p", map[string]any{"source": "T(x,y) :- E(x,y). E(1,2)."}); code != 400 || resp["error"] != "facts_in_program" {
		t.Fatalf("facts in program: %d %v", code, resp)
	}
	if code, resp = post(t, ts, "/v1/programs/p", map[string]any{"source": "T(x,y) :- E(x,y)."}); code != 200 {
		t.Fatalf("register: %d %v", code, resp)
	}
	if code, resp = post(t, ts, "/v1/programs/p/facts", map[string]any{"tenant": "t", "facts": "T(x,y) :- E(x,y)."}); code != 400 || resp["error"] != "rules_in_facts" {
		t.Fatalf("rules in facts: %d %v", code, resp)
	}
	if code, resp = post(t, ts, "/v1/programs/p/eval", map[string]any{"tenant": "ghost"}); code != 404 || resp["error"] != "unknown_tenant" {
		t.Fatalf("unknown tenant: %d %v", code, resp)
	}
}

// TestServeVetAndExplain covers the two read-side endpoints.
func TestServeVetAndExplain(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram}); code != 200 {
		t.Fatalf("register: %d %v", code, resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "acme", "facts": tenantAFacts}); code != 200 {
		t.Fatalf("facts: %d %v", code, resp)
	}

	code, resp := post(t, ts, "/v1/programs/authz/vet", map[string]any{})
	if code != 200 {
		t.Fatalf("vet: %d %v", code, resp)
	}
	if resp["errors"].(bool) {
		t.Fatalf("vet reported errors on a clean program: %v", resp)
	}
	if _, has := resp["termination_class"]; has {
		t.Fatalf("tgd-free program reported a termination class: %v", resp)
	}

	// A tgd-bearing source additionally reports the set's termination class
	// and every diagnostic names its pass.
	if code, resp := post(t, ts, "/v1/programs/terminating", map[string]any{
		"source": "Out(y) :- Q(y).\nP(x, y) -> Q(y).\nQ(y) -> R(y, z).",
	}); code != 200 {
		t.Fatalf("register tgds: %d %v", code, resp)
	}
	code, resp = post(t, ts, "/v1/programs/terminating/vet", map[string]any{})
	if code != 200 {
		t.Fatalf("vet tgds: %d %v", code, resp)
	}
	if got := resp["termination_class"]; got != "weakly-acyclic" {
		t.Fatalf("termination_class = %v, want weakly-acyclic", got)
	}
	for _, dj := range resp["diagnostics"].([]any) {
		d := dj.(map[string]any)
		if d["pass"] == "" {
			t.Fatalf("diagnostic without a pass name: %v", d)
		}
	}

	code, resp = post(t, ts, "/v1/programs/authz/explain",
		map[string]any{"tenant": "acme", "fact": `CanRead("ann", "handbook")`})
	if code != 200 {
		t.Fatalf("explain: %d %v", code, resp)
	}
	if !resp["found"].(bool) {
		t.Fatalf("explain did not find the derivation: %v", resp)
	}
	der := resp["derivation"].(string)
	if !strings.Contains(der, "CanRead") || !strings.Contains(der, "Member") {
		t.Fatalf("derivation missing expected atoms:\n%s", der)
	}

	code, resp = post(t, ts, "/v1/programs/authz/explain",
		map[string]any{"tenant": "acme", "fact": "CanRead(u, d)"})
	if code != 400 || resp["error"] != "fact_not_ground" {
		t.Fatalf("non-ground explain: %d %v", code, resp)
	}
}

// statField reads one integer stats field out of a decoded JSON payload.
func statField(t *testing.T, stats map[string]any, key string) int {
	t.Helper()
	v, ok := stats[key].(float64)
	if !ok {
		t.Fatalf("stats payload missing %q: %v", key, stats)
	}
	return int(v)
}

// TestStatzShardTotalsTwoTenants drives sharded and unsharded eval requests
// from two tenants, sums the per-request stats payloads, and asserts the
// /v1/statz eval totals match the sum exactly — the shard counters
// (shard_rounds, delta_exchanged, shard_imbalance) included. Run under
// -race in CI: the per-session accounting and the statz read race against
// each other in production.
func TestStatzShardTotalsTwoTenants(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram}); code != 200 {
		t.Fatalf("register: %d %v", code, resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "acme", "facts": tenantAFacts}); code != 200 {
		t.Fatalf("facts acme: %d %v", code, resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "globex", "facts": tenantBFacts}); code != 200 {
		t.Fatalf("facts globex: %d %v", code, resp)
	}

	keys := []string{"rounds", "firings", "added", "shard_rounds", "delta_exchanged", "shard_imbalance"}
	sum := make(map[string]int)
	requests := 0
	wantRows := oracleRows(t, authzProgram, []string{tenantAFacts}, "CanRead(u, d)")
	for _, req := range []map[string]any{
		{"tenant": "acme", "query": "CanRead(u, d)", "budget": map[string]any{"shards": 4, "workers": 2}},
		{"tenant": "globex", "budget": map[string]any{"shards": 2}},
		{"tenant": "acme", "query": "CanRead(u, d)"},
		{"tenant": "globex", "query": "Member(u, g)", "budget": map[string]any{"shards": 8, "max_derived": 1000}},
	} {
		code, resp := post(t, ts, "/v1/programs/authz/eval", req)
		if code != 200 {
			t.Fatalf("eval %v: %d %v", req, code, resp)
		}
		stats, ok := resp["stats"].(map[string]any)
		if !ok {
			t.Fatalf("eval %v: no stats in %v", req, resp)
		}
		for _, k := range keys {
			sum[k] += statField(t, stats, k)
		}
		requests++
		if req["tenant"] == "acme" && req["query"] == "CanRead(u, d)" {
			if got := respRows(t, resp); !sliceEq(got, wantRows) {
				t.Fatalf("sharded rows diverge from oracle: got %v want %v", got, wantRows)
			}
		}
	}
	if sum["shard_rounds"] == 0 {
		t.Fatal("no request exercised the sharded executor")
	}

	code, resp := get(t, ts, "/v1/statz")
	if code != 200 {
		t.Fatalf("statz: %d %v", code, resp)
	}
	ev, ok := resp["eval"].(map[string]any)
	if !ok {
		t.Fatalf("statz has no eval section: %v", resp)
	}
	if got := int(ev["requests"].(float64)); got != requests {
		t.Fatalf("statz eval requests = %d, want %d", got, requests)
	}
	totals, ok := ev["totals"].(map[string]any)
	if !ok {
		t.Fatalf("statz eval has no totals: %v", ev)
	}
	for _, k := range keys {
		if got := statField(t, totals, k); got != sum[k] {
			t.Fatalf("statz totals[%q] = %d, want the per-request sum %d", k, got, sum[k])
		}
	}
}

func sliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
