// Package service turns the library into a long-running multi-tenant query
// server: named, versioned programs in an in-process registry, per-tenant
// fact databases read through frozen copy-on-write snapshots, and HTTP/JSON
// handlers for eval, minimize, compare, vet and explain. The process-wide
// plan cache and verdict store are shared across all tenants — requests
// against canonically equal programs reuse one prepared plan and memoized
// containment verdicts — while per-request budgets (derived-fact caps and
// deadlines) keep any one tenant from monopolizing the process.
//
// Concurrency model. Each registered name owns one symbol table shared by
// every program version and every tenant fact set under that name, so the
// same symbol parses to the same constant everywhere — the invariant that
// makes tenant facts and query atoms mean the same thing the program text
// does. Symbol tables are mutated by interning, so every parse takes the
// entry's write lock and every render takes its read lock. Evaluation
// itself runs lock-free: inputs are frozen snapshots (immutable by
// construction), plans are immutable, and the session layer (core.Session)
// serializes only the single-threaded checker state.
package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

// Server is the in-process service: a registry of named program entries on
// top of a shared core.Service session registry.
type Server struct {
	svc *core.Service

	mu       sync.RWMutex
	programs map[string]*programEntry

	// Race-clean request counters, surfaced by /statz.
	requests atomic.Uint64
	errors   atomic.Uint64
	evals    atomic.Uint64
	canceled atomic.Uint64
}

// New returns an empty server. Sessions prepare through the process-wide
// plan cache unless opts injects another.
func New(opts ...core.SessionOptions) *Server {
	return &Server{svc: core.NewService(opts...), programs: make(map[string]*programEntry)}
}

// programEntry is one registered name: a shared symbol table, the version
// chain of programs, and the per-tenant snapshot chains.
type programEntry struct {
	name string

	// mu guards the symbol table (interning mutates it, so parses write-
	// lock and renders read-lock) and the version/tenant maps.
	mu       sync.RWMutex
	syms     *ast.SymbolTable
	versions map[int]*programVersion
	latest   int
	tenants  map[string]*tenantState
}

// programVersion is one immutable registered program version with its
// long-lived session handle.
type programVersion struct {
	version int
	source  string
	prog    *core.Program
	tgds    []core.TGD
	session *core.Session
}

// tenantState is one tenant's fact-database version chain under a program
// entry. Snapshots are immutable; staging a new version thaws the latest,
// adds facts, and freezes the result.
type tenantState struct {
	versions map[int]*db.Snapshot
	latest   int

	// views are the tenant's maintained materializations, keyed by program
	// version — created by the first subscription against that version and
	// kept current by every later mutation batch (subscribe.go).
	views map[int]*liveView
}

// entry returns the registered entry for name, or nil.
func (s *Server) entry(name string) *programEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.programs[name]
}

// RegisterProgram parses src under name's symbol table and registers it as
// the next program version. The source must contain rules (and optionally
// tgds) only: facts belong to tenant databases.
func (s *Server) RegisterProgram(name, src string) (version, rules, tgds int, err error) {
	s.mu.Lock()
	e := s.programs[name]
	if e == nil {
		e = &programEntry{
			name:     name,
			syms:     ast.NewSymbolTable(),
			versions: make(map[int]*programVersion),
			tenants:  make(map[string]*tenantState),
		}
		s.programs[name] = e
	}
	s.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	res, err := parser.ParseWithSymbols(src, e.syms)
	if err != nil {
		return 0, 0, 0, &RequestError{Status: 400, Code: "parse_error", Err: err}
	}
	if len(res.Facts) > 0 {
		return 0, 0, 0, &RequestError{Status: 400, Code: "facts_in_program",
			Err: fmt.Errorf("service: program source carries %d facts; load them per tenant via /facts", len(res.Facts))}
	}
	if len(res.Program.Rules) == 0 {
		return 0, 0, 0, &RequestError{Status: 400, Code: "empty_program", Err: fmt.Errorf("service: no rules in source")}
	}
	sess, err := s.svc.Open(res.Program)
	if err != nil {
		return 0, 0, 0, &RequestError{Status: 400, Code: "invalid_program", Err: err}
	}
	e.latest++
	pv := &programVersion{version: e.latest, source: src, prog: res.Program, tgds: res.TGDs, session: sess}
	e.versions[pv.version] = pv
	return pv.version, len(res.Program.Rules), len(res.TGDs), nil
}

// version resolves a program version under e (0 = latest); callers must
// not hold e.mu.
func (e *programEntry) versionEntry(v int) (*programVersion, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if v == 0 {
		v = e.latest
	}
	pv := e.versions[v]
	if pv == nil {
		return nil, &RequestError{Status: 404, Code: "unknown_version",
			Err: fmt.Errorf("service: program %q has no version %d", e.name, v)}
	}
	return pv, nil
}

// LoadFacts stages src's facts as assertions against the tenant's next
// database version: the assert-only form of MutateFacts.
func (s *Server) LoadFacts(name, tenant, src string) (version, size int, err error) {
	return s.MutateFacts(name, tenant, src, "")
}

// MutateFacts applies one mutation batch — assertSrc's facts added,
// retractSrc's facts removed — staging the result as the tenant's next
// database version (copy-on-write over the frozen predecessor). Batch
// semantics match core.DatabaseDelta: retracting an absent fact or
// asserting a present one is a no-op, and a fact in both halves nets to
// "present". Every live view of the tenant is maintained under the same
// lock and its diff fanned out to subscribers, so changefeed frame order is
// mutation order. Returns the new database version and its total size.
func (s *Server) MutateFacts(name, tenant, assertSrc, retractSrc string) (version, size int, err error) {
	e := s.entry(name)
	if e == nil {
		return 0, 0, errUnknownProgram(name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	asserts, err := e.parseFactsLocked(assertSrc)
	if err != nil {
		return 0, 0, err
	}
	retracts, err := e.parseFactsLocked(retractSrc)
	if err != nil {
		return 0, 0, err
	}
	t := e.tenants[tenant]
	if t == nil {
		t = &tenantState{versions: make(map[int]*db.Snapshot), views: make(map[int]*liveView)}
		e.tenants[tenant] = t
	}
	var w *db.Database
	if cur := t.versions[t.latest]; cur != nil {
		w = cur.Thaw()
	} else {
		w = db.New()
	}
	inAssert := make(map[string]bool, len(asserts))
	for _, g := range asserts {
		inAssert[g.Key()] = true
	}
	removed := false
	for _, g := range retracts {
		if !inAssert[g.Key()] && w.Remove(g) {
			removed = true
		}
	}
	if removed {
		w.Compact()
	}
	for _, g := range asserts {
		w.Add(g)
	}
	t.latest++
	t.versions[t.latest] = w.Freeze()
	e.broadcastLocked(t, t.latest, core.DatabaseDelta{Assert: asserts, Retract: retracts})
	return t.latest, w.Len(), nil
}

// parseFactsLocked parses a fact source under the entry's symbol table;
// callers hold e.mu. An empty source parses to no facts.
func (e *programEntry) parseFactsLocked(src string) ([]ast.GroundAtom, error) {
	if src == "" {
		return nil, nil
	}
	res, err := parser.ParseWithSymbols(src, e.syms)
	if err != nil {
		return nil, &RequestError{Status: 400, Code: "parse_error", Err: err}
	}
	if len(res.Program.Rules) > 0 || len(res.TGDs) > 0 {
		return nil, &RequestError{Status: 400, Code: "rules_in_facts",
			Err: fmt.Errorf("service: fact source carries rules or tgds; register them as a program version")}
	}
	return res.Facts, nil
}

// snapshot resolves a tenant's database version (0 = latest).
func (s *Server) snapshot(name, tenant string, v int) (*db.Snapshot, int, error) {
	e := s.entry(name)
	if e == nil {
		return nil, 0, errUnknownProgram(name)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	t := e.tenants[tenant]
	if t == nil {
		return nil, 0, &RequestError{Status: 404, Code: "unknown_tenant",
			Err: fmt.Errorf("service: program %q has no tenant %q", name, tenant)}
	}
	if v == 0 {
		v = t.latest
	}
	snap := t.versions[v]
	if snap == nil {
		return nil, 0, &RequestError{Status: 404, Code: "unknown_db_version",
			Err: fmt.Errorf("service: tenant %q has no database version %d", tenant, v)}
	}
	return snap, v, nil
}

// parseQueryAtom interns a query atom under the entry's symbol table.
func (e *programEntry) parseQueryAtom(src string) (ast.Atom, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, err := parser.ParseAtomWithSymbols(src, e.syms)
	if err != nil {
		return ast.Atom{}, &RequestError{Status: 400, Code: "parse_error", Err: err}
	}
	return a, nil
}

// formatRows renders result tuples under the entry's symbol table, sorted
// lexicographically for a deterministic wire format.
func (e *programEntry) formatRows(rows [][]ast.Const) [][]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([][]string, len(rows))
	for i, row := range rows {
		r := make([]string, len(row))
		for j, c := range row {
			r[j] = ast.FormatConst(c, e.syms)
		}
		out[i] = r
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// formatFacts renders a database's facts under the entry's symbol table,
// sorted for a deterministic wire format.
func (e *programEntry) formatFacts(d *db.Database) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.formatFactsLocked(d)
}

// formatFactsLocked is formatFacts for callers already holding e.mu.
func (e *programEntry) formatFactsLocked(d *db.Database) []string {
	facts := d.Facts()
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.Format(e.syms)
	}
	sort.Strings(out)
	return out
}

// statsJSON is the wire form of eval.Stats plus the request's resolved
// versions.
type statsJSON struct {
	Rounds             int `json:"rounds"`
	Firings            int `json:"firings"`
	Added              int `json:"added"`
	PrepareHits        int `json:"prepare_hits"`
	PrepareMisses      int `json:"prepare_misses"`
	VerdictsReused     int `json:"verdicts_reused"`
	VerdictsRecomputed int `json:"verdicts_recomputed"`
	VerdictsSubsumed   int `json:"verdicts_subsumed"`
	StrataStreamed     int `json:"strata_streamed"`
	StrataMaterialized int `json:"strata_materialized"`
	BindingsPipelined  int `json:"bindings_pipelined"`
	EarlyStopCuts      int `json:"early_stop_cuts"`
	ShardRounds        int `json:"shard_rounds"`
	DeltaExchanged     int `json:"delta_exchanged"`
	ShardImbalance     int `json:"shard_imbalance"`
	Applies            int `json:"applies"`
	CountAdjusted      int `json:"count_adjusted"`
	Overdeleted        int `json:"overdeleted"`
	Rederived          int `json:"rederived"`
	RelationsFrozen    int `json:"relations_frozen"`
	FreezeSkipped      int `json:"freeze_skipped"`
	ChasesBudgetFree   int `json:"chases_budget_free"`
	ChasesBudgetBound  int `json:"chases_budget_bounded"`
}

func toStatsJSON(st eval.Stats) statsJSON {
	return statsJSON{
		Rounds:             st.Rounds,
		Firings:            st.Firings,
		Added:              st.Added,
		PrepareHits:        st.PrepareHits,
		PrepareMisses:      st.PrepareMisses,
		VerdictsReused:     st.VerdictsReused,
		VerdictsRecomputed: st.VerdictsRecomputed,
		VerdictsSubsumed:   st.VerdictsSubsumed,
		StrataStreamed:     st.StrataStreamed,
		StrataMaterialized: st.StrataMaterialized,
		BindingsPipelined:  st.BindingsPipelined,
		EarlyStopCuts:      st.EarlyStopCuts,
		ShardRounds:        st.ShardRounds,
		DeltaExchanged:     st.DeltaExchanged,
		ShardImbalance:     st.ShardImbalance,
		Applies:            st.Applies,
		CountAdjusted:      st.CountAdjusted,
		Overdeleted:        st.Overdeleted,
		Rederived:          st.Rederived,
		RelationsFrozen:    st.RelationsFrozen,
		FreezeSkipped:      st.FreezeSkipped,
		ChasesBudgetFree:   st.ChasesBudgetFree,
		ChasesBudgetBound:  st.ChasesBudgetBounded,
	}
}

// RequestError is a typed service error carrying the HTTP status and a
// stable machine-readable code.
type RequestError struct {
	Status int
	Code   string
	Err    error
}

func (e *RequestError) Error() string { return e.Err.Error() }
func (e *RequestError) Unwrap() error { return e.Err }

func errUnknownProgram(name string) error {
	return &RequestError{Status: 404, Code: "unknown_program",
		Err: fmt.Errorf("service: no program named %q", name)}
}
