package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
)

// feed is one NDJSON changefeed connection. A reader goroutine pumps
// decoded frames into a channel so tests can apply deadlines; the channel
// closes when the stream ends.
type feed struct {
	resp   *http.Response
	cancel context.CancelFunc
	frames chan map[string]any
}

func subscribe(t *testing.T, ts *httptest.Server, program string, body map[string]any) *feed {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST",
		ts.URL+"/v1/programs/"+program+"/subscriptions", bytes.NewReader(buf))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe: status %d: %v", resp.StatusCode, e)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("subscribe: content-type %q", ct)
	}
	f := &feed{resp: resp, cancel: cancel, frames: make(chan map[string]any, 64)}
	go func() {
		dec := json.NewDecoder(resp.Body)
		for {
			var m map[string]any
			if err := dec.Decode(&m); err != nil {
				close(f.frames)
				return
			}
			f.frames <- m
		}
	}()
	t.Cleanup(func() {
		f.cancel()
		f.resp.Body.Close()
	})
	return f
}

// next waits for the feed's next frame.
func (f *feed) next(t *testing.T) map[string]any {
	t.Helper()
	select {
	case m, ok := <-f.frames:
		if !ok {
			t.Fatal("changefeed closed")
		}
		return m
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for changefeed frame")
	}
	return nil
}

// idle asserts the feed delivers nothing (tenant isolation).
func (f *feed) idle(t *testing.T) {
	t.Helper()
	select {
	case m := <-f.frames:
		t.Fatalf("unexpected frame: %v", m)
	case <-time.After(100 * time.Millisecond):
	}
}

func strs(v any) []string {
	raw, _ := v.([]any)
	out := make([]string, len(raw))
	for i, s := range raw {
		out[i] = s.(string)
	}
	return out
}

// evalFacts fetches a tenant's full materialized output through /eval.
func evalFacts(t *testing.T, ts *httptest.Server, program, tenant string) []string {
	t.Helper()
	code, resp := post(t, ts, "/v1/programs/"+program+"/eval", map[string]any{"tenant": tenant})
	if code != 200 {
		t.Fatalf("eval: status %d: %v", code, resp)
	}
	return strs(resp["facts"])
}

// diffStrings returns after∖before and before∖after, sorted.
func diffStrings(before, after []string) (added, removed []string) {
	b := make(map[string]bool, len(before))
	for _, s := range before {
		b[s] = true
	}
	a := make(map[string]bool, len(after))
	for _, s := range after {
		a[s] = true
		if !b[s] {
			added = append(added, s)
		}
	}
	for _, s := range before {
		if !a[s] {
			removed = append(removed, s)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// TestSubscriptionsTwoTenantsE2E is the changefeed acceptance scenario: two
// tenants hold subscriptions against one program; each mutation batch
// yields exactly one frame per subscriber of the mutated tenant — and none
// for the other — whose diff is exactly the net output change, in an order
// deterministic across subscribers; and a fresh subscription's snapshot
// equals the previous snapshot plus the streamed diffs. Run under -race in
// CI.
func TestSubscriptionsTwoTenantsE2E(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	// Cleanup, not defer: feeds register their own cleanups after this one,
	// so LIFO order disconnects the streams before the server waits for
	// connections to drain.
	t.Cleanup(ts.Close)

	if code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram}); code != 200 {
		t.Fatalf("register: %v", resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "a", "assert": tenantAFacts}); code != 200 {
		t.Fatalf("facts a: %v", resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "b", "assert": tenantBFacts}); code != 200 {
		t.Fatalf("facts b: %v", resp)
	}

	beforeA := evalFacts(t, ts, "authz", "a")
	beforeB := evalFacts(t, ts, "authz", "b")

	subA1 := subscribe(t, ts, "authz", map[string]any{"tenant": "a"})
	subA2 := subscribe(t, ts, "authz", map[string]any{"tenant": "a"})
	subB := subscribe(t, ts, "authz", map[string]any{"tenant": "b"})

	snapA1, snapA2, snapB := subA1.next(t), subA2.next(t), subB.next(t)
	for _, snap := range []map[string]any{snapA1, snapA2, snapB} {
		if snap["snapshot"] != true || snap["seq"].(float64) != 0 || snap["db_version"].(float64) != 1 {
			t.Fatalf("bad snapshot frame: %v", snap)
		}
	}
	// The snapshot is the same materialization /eval computes.
	if !reflect.DeepEqual(strs(snapA1["facts"]), beforeA) {
		t.Fatalf("snapshot a = %v\nwant %v", strs(snapA1["facts"]), beforeA)
	}
	if !reflect.DeepEqual(snapA2, snapA1) {
		t.Fatalf("subscribers disagree on snapshot:\n%v\n%v", snapA2, snapA1)
	}
	if !reflect.DeepEqual(strs(snapB["facts"]), beforeB) {
		t.Fatalf("snapshot b = %v\nwant %v", strs(snapB["facts"]), beforeB)
	}

	// Tenant a swaps handbook access for wiki access in one batch.
	code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{
		"tenant":  "a",
		"assert":  `Allows("viewer", "wiki").`,
		"retract": `Allows("viewer", "handbook").`,
	})
	if code != 200 || resp["db_version"].(float64) != 2 {
		t.Fatalf("mutate a: %d %v", code, resp)
	}
	afterA := evalFacts(t, ts, "authz", "a")
	wantAdded, wantRemoved := diffStrings(beforeA, afterA)

	fA1, fA2 := subA1.next(t), subA2.next(t)
	if fA1["seq"].(float64) != 1 || fA1["db_version"].(float64) != 2 || fA1["snapshot"] == true {
		t.Fatalf("bad diff frame: %v", fA1)
	}
	// Each predicate contributes one fact here, so the canonical frame
	// order and the string-sorted oracle order coincide — the diff is
	// checked exactly, order included.
	if !reflect.DeepEqual(strs(fA1["added"]), wantAdded) || !reflect.DeepEqual(strs(fA1["removed"]), wantRemoved) {
		t.Fatalf("diff = +%v -%v\nwant +%v -%v", strs(fA1["added"]), strs(fA1["removed"]), wantAdded, wantRemoved)
	}
	if len(wantAdded) != 2 || len(wantRemoved) != 2 {
		t.Fatalf("unexpected oracle diff size: +%v -%v", wantAdded, wantRemoved)
	}
	if !reflect.DeepEqual(fA2, fA1) {
		t.Fatalf("subscribers disagree on diff frame:\n%v\n%v", fA2, fA1)
	}
	subB.idle(t)

	// Tenant b loses bob's group membership: a retraction cascading through
	// the recursive Member closure down to CanRead.
	code, resp = post(t, ts, "/v1/programs/authz/facts", map[string]any{
		"tenant":  "b",
		"retract": `Direct("bob", "ops").`,
	})
	if code != 200 || resp["db_version"].(float64) != 2 {
		t.Fatalf("mutate b: %d %v", code, resp)
	}
	afterB := evalFacts(t, ts, "authz", "b")
	wantAddedB, wantRemovedB := diffStrings(beforeB, afterB)
	fB := subB.next(t)
	if fB["seq"].(float64) != 1 || fB["db_version"].(float64) != 2 {
		t.Fatalf("bad diff frame: %v", fB)
	}
	gotRemovedB := append([]string(nil), strs(fB["removed"])...)
	sort.Strings(gotRemovedB)
	if len(strs(fB["added"])) != 0 || !reflect.DeepEqual(gotRemovedB, wantRemovedB) || len(wantAddedB) != 0 {
		t.Fatalf("diff b = +%v -%v\nwant +%v -%v", strs(fB["added"]), gotRemovedB, wantAddedB, wantRemovedB)
	}
	if len(wantRemovedB) != 5 {
		t.Fatalf("oracle removed %v, want the 5-fact cascade", wantRemovedB)
	}
	subA1.idle(t)

	// Exactness: a fresh subscription sees snapshot == old snapshot ± the
	// streamed diffs, at the view's current seq.
	subA3 := subscribe(t, ts, "authz", map[string]any{"tenant": "a"})
	snapA3 := subA3.next(t)
	if snapA3["seq"].(float64) != 1 || snapA3["db_version"].(float64) != 2 {
		t.Fatalf("bad late snapshot frame: %v", snapA3)
	}
	if !reflect.DeepEqual(strs(snapA3["facts"]), afterA) {
		t.Fatalf("late snapshot = %v\nwant %v", strs(snapA3["facts"]), afterA)
	}

	// The maintained view's work shows up in the accounted totals.
	if code, resp := get(t, ts, "/v1/statz"); code != 200 {
		t.Fatalf("statz: %v", resp)
	} else {
		totals := resp["eval"].(map[string]any)["totals"].(map[string]any)
		if totals["applies"].(float64) < 2 {
			t.Fatalf("statz applies = %v, want >= 2", totals["applies"])
		}
	}
}

// TestSubscriptionSlowConsumerDrop exercises the backpressure policy at the
// fan-out layer: a subscriber that stops draining is dropped — its channel
// closed with reason slow_consumer and its registration removed — after
// exactly subscriberBuffer undelivered frames, while the view itself stays
// live for other consumers.
func TestSubscriptionSlowConsumerDrop(t *testing.T) {
	s := New()
	if _, _, _, err := s.RegisterProgram("authz", authzProgram); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.MutateFacts("authz", "a", tenantAFacts, ""); err != nil {
		t.Fatal(err)
	}
	e := s.entry("authz")
	pv, err := e.versionEntry(0)
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	ten := e.tenants["a"]
	view, _, err := pv.session.Materialize(context.Background(), ten.versions[ten.latest].DB(), core.MaintainOptions{})
	if err != nil {
		e.mu.Unlock()
		t.Fatal(err)
	}
	lv := &liveView{pv: pv, view: view, dbVersion: ten.latest, subs: make(map[*subscriber]bool)}
	ten.views[pv.version] = lv
	slow := &subscriber{ch: make(chan viewFrame, subscriberBuffer)}
	lv.subs[slow] = true
	e.mu.Unlock()

	// One more batch than the subscriber can buffer.
	for i := 0; i <= subscriberBuffer; i++ {
		if _, _, err := s.MutateFacts("authz", "a", fmt.Sprintf("Direct(\"u%d\", \"eng\").", i), ""); err != nil {
			t.Fatal(err)
		}
	}

	n := 0
drain:
	for {
		select {
		case f, ok := <-slow.ch:
			if !ok {
				break drain
			}
			if f.Seq != uint64(n+1) {
				t.Fatalf("frame seq = %d, want %d", f.Seq, n+1)
			}
			n++
		case <-time.After(5 * time.Second):
			t.Fatal("subscriber channel not closed after overflow")
		}
	}
	if n != subscriberBuffer {
		t.Fatalf("buffered frames = %d, want %d", n, subscriberBuffer)
	}
	if slow.reason != "slow_consumer" {
		t.Fatalf("reason = %q, want slow_consumer", slow.reason)
	}
	e.mu.Lock()
	if lv.subs[slow] {
		t.Fatal("dropped subscriber still registered")
	}
	still := ten.views[pv.version] == lv
	seq := lv.seq
	e.mu.Unlock()
	if !still || seq != uint64(subscriberBuffer+1) {
		t.Fatalf("view gone or stale: live=%v seq=%d", still, seq)
	}
}

// TestSubscriptionDropSendsTypedErrorFrame covers the wire half of the
// backpressure policy: an HTTP subscriber whose channel is closed by the
// fan-out path receives a final typed error frame and then end-of-stream.
func TestSubscriptionDropSendsTypedErrorFrame(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram}); code != 200 {
		t.Fatalf("register: %v", resp)
	}
	if code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "a", "assert": tenantAFacts}); code != 200 {
		t.Fatalf("facts: %v", resp)
	}
	f := subscribe(t, ts, "authz", map[string]any{"tenant": "a"})
	if snap := f.next(t); snap["snapshot"] != true {
		t.Fatalf("want snapshot first, got %v", snap)
	}

	// Drop the subscriber under the entry lock exactly as the fan-out path
	// does when its buffer overflows.
	e := s.entry("authz")
	e.mu.Lock()
	lv := e.tenants["a"].views[1]
	if lv == nil || len(lv.subs) != 1 {
		e.mu.Unlock()
		t.Fatalf("expected one live subscriber")
	}
	for sub := range lv.subs {
		sub.failLocked("slow_consumer")
		delete(lv.subs, sub)
	}
	e.mu.Unlock()

	errf := f.next(t)
	if errf["error"] != "slow_consumer" {
		t.Fatalf("error frame = %v", errf)
	}
	select {
	case m, ok := <-f.frames:
		if ok {
			t.Fatalf("frame after error frame: %v", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after error frame")
	}
}

// TestFactsEnvelope covers the mutation envelope's edges: the deprecated
// legacy "facts" alias (accepted, flagged), the assert+facts conflict, and
// a retract-only batch reaching /eval results.
func TestFactsEnvelope(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, resp := post(t, ts, "/v1/programs/authz", map[string]any{"source": authzProgram}); code != 200 {
		t.Fatalf("register: %v", resp)
	}

	code, resp := post(t, ts, "/v1/programs/authz/facts", map[string]any{"tenant": "a", "facts": tenantAFacts})
	if code != 200 || resp["db_version"].(float64) != 1 {
		t.Fatalf("legacy facts: %d %v", code, resp)
	}
	if dep, _ := resp["deprecated"].(string); dep == "" {
		t.Fatalf("legacy alias not flagged deprecated: %v", resp)
	}

	code, resp = post(t, ts, "/v1/programs/authz/facts", map[string]any{
		"tenant": "a", "facts": tenantAFacts, "assert": tenantAFacts2,
	})
	if code != 400 || resp["error"] != "conflicting_fields" {
		t.Fatalf("facts+assert: %d %v", code, resp)
	}

	code, resp = post(t, ts, "/v1/programs/authz/facts", map[string]any{
		"tenant": "a", "retract": `Allows("viewer", "handbook").`,
	})
	if code != 200 || resp["db_version"].(float64) != 2 {
		t.Fatalf("retract-only: %d %v", code, resp)
	}
	if _, ok := resp["deprecated"]; ok {
		t.Fatalf("envelope form flagged deprecated: %v", resp)
	}
	code, resp = post(t, ts, "/v1/programs/authz/eval", map[string]any{"tenant": "a", "query": "CanRead(u, d)"})
	if code != 200 {
		t.Fatalf("eval: %v", resp)
	}
	if rows := respRows(t, resp); len(rows) != 0 {
		t.Fatalf("CanRead after retract = %v, want none", rows)
	}
}
