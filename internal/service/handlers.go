package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/eval"
)

// Handler returns the server's HTTP mux (go 1.22 method+wildcard patterns):
//
//	POST /v1/programs/{name}            register a program version
//	POST /v1/programs/{name}/facts     apply a mutation batch (assert/retract)
//	POST /v1/programs/{name}/subscriptions  changefeed of maintained output diffs
//	POST /v1/programs/{name}/eval      evaluate / query under a budget
//	POST /v1/programs/{name}/minimize  Fig. 2 minimization
//	POST /v1/programs/{name}/compare   uniform equivalence of two versions
//	POST /v1/programs/{name}/vet       static analysis of a version's source
//	POST /v1/programs/{name}/explain   derivation tree of one fact
//	GET  /v1/statz                     cache/verdict/request counters
//	GET  /v1/healthz                   liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs/{name}", s.handleRegister)
	mux.HandleFunc("POST /v1/programs/{name}/facts", s.handleFacts)
	mux.HandleFunc("POST /v1/programs/{name}/subscriptions", s.handleSubscribe)
	mux.HandleFunc("POST /v1/programs/{name}/eval", s.handleEval)
	mux.HandleFunc("POST /v1/programs/{name}/minimize", s.handleMinimize)
	mux.HandleFunc("POST /v1/programs/{name}/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/programs/{name}/vet", s.handleVet)
	mux.HandleFunc("POST /v1/programs/{name}/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, map[string]string{"status": "ok"})
	})
	return mux
}

// budgetJSON is the per-request resource envelope: a derived-fact cap, a
// context deadline, and tuning knobs for the evaluation executor (parallel
// workers and hash-partition shards).
type budgetJSON struct {
	MaxDerived int `json:"max_derived"`
	TimeoutMS  int `json:"timeout_ms"`
	Workers    int `json:"workers"`
	Shards     int `json:"shards"`
}

// Per-request tuning caps: a tenant may tune its own requests' parallelism
// and sharding, but not demand unbounded fan-out from a shared process.
const (
	maxRequestWorkers = 16
	maxRequestShards  = 64
)

// tune maps the budget onto per-request eval options, clamping Workers and
// Shards to the service caps (zero and negative values inherit the session
// defaults).
func (b budgetJSON) tune() core.EvalRequestOptions {
	req := core.EvalRequestOptions{}
	if b.MaxDerived > 0 {
		req.MaxDerived = b.MaxDerived
	}
	if b.Workers > 0 {
		req.Workers = min(b.Workers, maxRequestWorkers)
	}
	if b.Shards > 0 {
		req.Shards = min(b.Shards, maxRequestShards)
	}
	return req
}

// ctx derives the request context bounded by the budget's deadline.
func (b budgetJSON) ctx(parent context.Context) (context.Context, context.CancelFunc) {
	if b.TimeoutMS > 0 {
		return context.WithTimeout(parent, time.Duration(b.TimeoutMS)*time.Millisecond)
	}
	return context.WithCancel(parent)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError maps typed errors onto HTTP statuses and stable codes:
// RequestError carries its own; a deadline maps to 504, cancellation to
// 499, an exhausted derived-fact budget to 422.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.errors.Add(1)
	var re *RequestError
	switch {
	case errors.As(err, &re):
		writeJSON(w, re.Status, map[string]string{"error": re.Code, "message": re.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "deadline_exceeded", "message": err.Error()})
	case errors.Is(err, eval.ErrCanceled):
		s.canceled.Add(1)
		writeJSON(w, 499, map[string]string{"error": "canceled", "message": err.Error()})
	case errors.Is(err, eval.ErrBudget):
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": "budget_exhausted", "message": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal", "message": err.Error()})
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &RequestError{Status: 400, Code: "bad_request", Err: fmt.Errorf("service: decoding body: %w", err)}
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		Source string `json:"source"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	version, rules, tgds, err := s.RegisterProgram(r.PathValue("name"), req.Source)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, 200, map[string]any{
		"name": r.PathValue("name"), "version": version, "rules": rules, "tgds": tgds,
	})
}

// handleFacts applies one mutation envelope {"assert": ..., "retract": ...}
// to a tenant database. The legacy "facts" field remains as an alias for
// "assert" (the pre-envelope wire format) and earns a deprecation note in
// the response; setting both is an error.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		Tenant  string `json:"tenant"`
		Assert  string `json:"assert"`
		Retract string `json:"retract"`
		Facts   string `json:"facts"` // deprecated alias for Assert
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Tenant == "" {
		s.writeError(w, &RequestError{Status: 400, Code: "missing_tenant", Err: fmt.Errorf("service: tenant required")})
		return
	}
	deprecated := false
	if req.Facts != "" {
		if req.Assert != "" {
			s.writeError(w, &RequestError{Status: 400, Code: "conflicting_fields",
				Err: fmt.Errorf(`service: "facts" is a deprecated alias for "assert"; set only one`)})
			return
		}
		req.Assert = req.Facts
		deprecated = true
	}
	version, size, err := s.MutateFacts(r.PathValue("name"), req.Tenant, req.Assert, req.Retract)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := map[string]any{"tenant": req.Tenant, "db_version": version, "size": size}
	if deprecated {
		resp["deprecated"] = `field "facts" is deprecated; use "assert"`
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		Tenant         string     `json:"tenant"`
		Query          string     `json:"query"`
		ProgramVersion int        `json:"program_version"`
		DBVersion      int        `json:"db_version"`
		Budget         budgetJSON `json:"budget"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	name := r.PathValue("name")
	e := s.entry(name)
	if e == nil {
		s.writeError(w, errUnknownProgram(name))
		return
	}
	pv, err := e.versionEntry(req.ProgramVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	snap, dbv, err := s.snapshot(name, req.Tenant, req.DBVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := req.Budget.ctx(r.Context())
	defer cancel()
	s.evals.Add(1)

	resp := map[string]any{"program_version": pv.version, "db_version": dbv}
	if req.Query != "" {
		atom, err := e.parseQueryAtom(req.Query)
		if err != nil {
			s.writeError(w, err)
			return
		}
		out, st, err := pv.session.EvalWith(ctx, snap.DB(), req.Budget.tune())
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp["rows"] = e.formatRows(matchRows(out, atom))
		resp["stats"] = toStatsJSON(st)
		writeJSON(w, 200, resp)
		return
	}
	out, st, err := pv.session.EvalWith(ctx, snap.DB(), req.Budget.tune())
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp["facts"] = e.formatFacts(out)
	resp["stats"] = toStatsJSON(st)
	writeJSON(w, 200, resp)
}

func (s *Server) handleMinimize(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		ProgramVersion int        `json:"program_version"`
		Budget         budgetJSON `json:"budget"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	e := s.entry(r.PathValue("name"))
	if e == nil {
		s.writeError(w, errUnknownProgram(r.PathValue("name")))
		return
	}
	pv, err := e.versionEntry(req.ProgramVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := req.Budget.ctx(r.Context())
	defer cancel()
	q, trace, err := pv.session.Minimize(ctx, core.MinimizeOptions{})
	if err != nil {
		s.writeError(w, err)
		return
	}
	e.mu.RLock()
	rendered := q.Format(e.syms)
	e.mu.RUnlock()
	writeJSON(w, 200, map[string]any{
		"program_version": pv.version,
		"program":         rendered,
		"atoms_removed":   trace.AtomsRemoved(),
		"rules_removed":   trace.RulesRemoved(),
		"stats":           toStatsJSON(trace.Stats),
	})
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		VersionA int        `json:"version_a"`
		VersionB int        `json:"version_b"`
		Budget   budgetJSON `json:"budget"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	e := s.entry(r.PathValue("name"))
	if e == nil {
		s.writeError(w, errUnknownProgram(r.PathValue("name")))
		return
	}
	pa, err := e.versionEntry(req.VersionA)
	if err != nil {
		s.writeError(w, err)
		return
	}
	pb, err := e.versionEntry(req.VersionB)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := req.Budget.ctx(r.Context())
	defer cancel()
	equivalent, err := pa.session.Compare(ctx, pb.session)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, 200, map[string]any{
		"version_a": pa.version, "version_b": pb.version, "equivalent": equivalent,
	})
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		ProgramVersion int `json:"program_version"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	e := s.entry(r.PathValue("name"))
	if e == nil {
		s.writeError(w, errUnknownProgram(r.PathValue("name")))
		return
	}
	pv, err := e.versionEntry(req.ProgramVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Vet re-parses the stored source loosely (its own symbol table) so
	// ill-formedness reaches the analyzer instead of a parse rejection.
	res, err := core.ParseLoose(pv.source)
	if err != nil {
		s.writeError(w, &RequestError{Status: 400, Code: "parse_error", Err: err})
		return
	}
	diags := core.Analyze(res)
	type diagJSON struct {
		Code     string `json:"code"`
		Severity string `json:"severity"`
		Pass     string `json:"pass"`
		Pos      string `json:"pos,omitempty"`
		Message  string `json:"message"`
	}
	out := make([]diagJSON, 0, len(diags))
	for _, d := range diags {
		dj := diagJSON{Code: d.Code, Severity: d.Severity.String(), Pass: d.Pass, Message: d.Message}
		if d.Pos.IsValid() {
			dj.Pos = d.Pos.String()
		}
		out = append(out, dj)
	}
	resp := map[string]any{
		"program_version": pv.version,
		"diagnostics":     out,
		"errors":          core.AnalysisHasErrors(diags),
	}
	if len(res.TGDs) > 0 {
		resp["termination_class"] = core.ClassifyTGDs(res.Program, res.TGDs).Class.String()
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req struct {
		Tenant         string `json:"tenant"`
		Fact           string `json:"fact"`
		ProgramVersion int    `json:"program_version"`
		DBVersion      int    `json:"db_version"`
	}
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	name := r.PathValue("name")
	e := s.entry(name)
	if e == nil {
		s.writeError(w, errUnknownProgram(name))
		return
	}
	pv, err := e.versionEntry(req.ProgramVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	snap, dbv, err := s.snapshot(name, req.Tenant, req.DBVersion)
	if err != nil {
		s.writeError(w, err)
		return
	}
	atom, err := e.parseQueryAtom(req.Fact)
	if err != nil {
		s.writeError(w, err)
		return
	}
	goal, err := atom.Ground(ast.Binding{})
	if err != nil {
		s.writeError(w, &RequestError{Status: 400, Code: "fact_not_ground",
			Err: fmt.Errorf("service: explain needs a ground fact: %w", err)})
		return
	}
	prover, err := core.NewProver(pv.prog, snap.DB())
	if err != nil {
		s.writeError(w, err)
		return
	}
	d, found := prover.Explain(goal)
	resp := map[string]any{"program_version": pv.version, "db_version": dbv, "found": found}
	if found {
		e.mu.RLock()
		resp["derivation"] = d.Format(pv.prog, e.syms)
		e.mu.RUnlock()
	}
	writeJSON(w, 200, resp)
}

// handleStatz surfaces the plan cache the server's sessions prepare through
// (injected or process-wide), the process-wide verdict store, and the
// server's request counters — all read race-free.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	pc := s.svc.PlanCacheStats()
	vs := core.VerdictStats()
	est, ereqs := s.svc.TotalStats()
	s.mu.RLock()
	nprogs := len(s.programs)
	s.mu.RUnlock()
	writeJSON(w, 200, map[string]any{
		"programs": nprogs,
		"eval": map[string]any{
			"requests": ereqs,
			"totals":   toStatsJSON(est),
		},
		"plan_cache": map[string]any{
			"entries": pc.Entries, "hits": pc.Hits, "misses": pc.Misses,
			"evictions": pc.Evictions,
		},
		"verdict_store": map[string]any{
			"programs": vs.Programs, "verdicts": vs.Verdicts,
			"lookups": vs.Lookups, "hits": vs.Hits, "rotations": vs.Rotations,
		},
		"requests": map[string]any{
			"total": s.requests.Load(), "errors": s.errors.Load(),
			"evals": s.evals.Load(), "canceled": s.canceled.Load(),
		},
	})
}

// matchRows filters the tuples of out matching the query atom.
func matchRows(out *core.Database, query ast.Atom) [][]ast.Const {
	var rows [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, query, db.AllRounds, b, func() bool {
		g := query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		rows = append(rows, t)
		return true
	})
	return rows
}
