package constraint

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/workload"
)

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

// example9DB is the Example 2 output: G = transitive closure of A.
func example9DB() *db.Database {
	return eval.MustEval(workload.TransitiveClosure(),
		db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)}))
}

func TestExample9(t *testing.T) {
	d := example9DB()
	bad := parser.MustParseTGD("G(x, y) -> A(y, z), A(z, x).")
	good := parser.MustParseTGD("G(x, y) -> G(x, z), A(z, y).")

	if Satisfies(d, []ast.TGD{bad}) {
		t.Fatal("Example 9's violated tgd reported satisfied")
	}
	if !Satisfies(d, []ast.TGD{good}) {
		t.Fatal("Example 9's satisfied tgd reported violated")
	}

	// The paper pinpoints the violation at x=4, y=2.
	vs := Violations(d, []ast.TGD{bad}, 0)
	found := false
	for _, v := range vs {
		if v.Binding["x"] == ast.Int(4) && v.Binding["y"] == ast.Int(2) {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation at (4,2) not reported; got %v", vs)
	}
}

func TestViolationsLimit(t *testing.T) {
	d := example9DB()
	bad := parser.MustParseTGD("G(x, y) -> Z(x).")
	all := Violations(d, []ast.TGD{bad}, 0)
	if len(all) != d.Relation("G").Len() {
		t.Fatalf("want one violation per G fact, got %d", len(all))
	}
	two := Violations(d, []ast.TGD{bad}, 2)
	if len(two) != 2 {
		t.Fatalf("limit ignored: %d", len(two))
	}
	if !strings.Contains(two[0].String(), "violated at") {
		t.Fatalf("violation rendering: %s", two[0])
	}
}

func TestRepairFullTgd(t *testing.T) {
	d := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 2, 3)})
	sym := parser.MustParseTGD("A(x, y) -> A(y, x).")
	res, err := Repair(d.Clone(), []ast.TGD{sym}, chase.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("full-tgd repair did not complete")
	}
	if !Satisfies(res.DB, []ast.TGD{sym}) {
		t.Fatal("repair left violations")
	}
	if !res.DB.Has(ga("A", 2, 1)) || !res.DB.Has(ga("A", 3, 2)) {
		t.Fatalf("repair missing symmetric edges: %v", res.DB)
	}
}

func TestRepairEmbeddedTgdAddsNulls(t *testing.T) {
	// Terminating embedded tgd: every employee needs SOME manager record,
	// but managers need nothing further — one null per employee suffices.
	d := db.FromFacts([]ast.GroundAtom{ga("Emp", 7), ga("Emp", 8)})
	works := parser.MustParseTGD("Emp(x) -> WorksFor(x, m).")
	res, err := Repair(d.Clone(), []ast.TGD{works}, chase.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("embedded repair did not complete:\n%v", res.DB)
	}
	if !Satisfies(res.DB, []ast.TGD{works}) {
		t.Fatal("repair left violations")
	}
	foundNull := false
	for _, f := range res.DB.Facts() {
		if f.Pred == "WorksFor" && ast.IsNull(f.Args[1]) {
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatalf("no null manager invented:\n%v", res.DB)
	}
}

func TestRepairDivergingTgdHitsBudget(t *testing.T) {
	// Emp(x) → WorksFor(x,m) ∧ Emp(m) forces an infinite manager chain:
	// each invented null manager is itself an Emp and re-fires the tgd.
	// The restricted chase cannot terminate; the budget must cut it off.
	d := db.FromFacts([]ast.GroundAtom{ga("Emp", 7)})
	works := parser.MustParseTGD("Emp(x) -> WorksFor(x, m), Emp(m).")
	res, err := Repair(d.Clone(), []ast.TGD{works}, chase.Budget{MaxAtoms: 60, MaxRounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatalf("diverging repair reported complete:\n%v", res.DB)
	}
}

func TestSatisfiesEmptyCases(t *testing.T) {
	if !Satisfies(db.New(), nil) {
		t.Fatal("empty everything not satisfied")
	}
	tau := parser.MustParseTGD("G(x, y) -> A(x).")
	if !Satisfies(db.New(), []ast.TGD{tau}) {
		t.Fatal("empty DB violates a tgd")
	}
}
