// Package constraint checks tuple-generating dependencies against concrete
// databases — the satisfaction relation of Section VIII ("a DB d satisfies
// a tgd τ if for every instantiation θ of the universally quantified
// variables … the right-hand side can also be instantiated") that Example 9
// walks through. Besides powering tests, it gives downstream users a
// standalone integrity checker: list every violation of a constraint set,
// or repair a database by chasing the violations away.
package constraint

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
)

// Violation is one witnessed failure: the instantiation of the tgd's
// left-hand side for which no right-hand-side extension exists.
type Violation struct {
	// TGD is the violated dependency.
	TGD ast.TGD
	// LHS is the instantiated left-hand side.
	LHS []ast.GroundAtom
	// Binding is the universal-variable instantiation θ.
	Binding ast.Binding
}

// String renders the violation.
func (v Violation) String() string {
	parts := make([]string, len(v.LHS))
	for i, g := range v.LHS {
		parts[i] = g.String()
	}
	return fmt.Sprintf("%s violated at %s", v.TGD, strings.Join(parts, ", "))
}

// Satisfies reports whether d satisfies every tgd of T.
func Satisfies(d *db.Database, tgds []ast.TGD) bool {
	for _, tau := range tgds {
		if v := firstViolation(d, tau); v != nil {
			return false
		}
	}
	return true
}

// Violations returns every violation of the tgds in d, up to max (0 means
// unlimited). Violations of the same tgd with different instantiations are
// reported separately.
func Violations(d *db.Database, tgds []ast.TGD, max int) []Violation {
	var out []Violation
	for _, tau := range tgds {
		b := ast.Binding{}
		stop := false
		db.MatchConjunction(d, tau.Lhs, b, func() bool {
			if db.Satisfiable(d, tau.Rhs, b) {
				return true
			}
			lhs, err := ast.GroundAtoms(tau.Lhs, b)
			if err != nil {
				return true // unreachable: the match bound every variable
			}
			out = append(out, Violation{TGD: tau.Clone(), LHS: lhs, Binding: b.Clone()})
			if max > 0 && len(out) >= max {
				stop = true
				return false
			}
			return true
		})
		if stop {
			break
		}
	}
	return out
}

func firstViolation(d *db.Database, tau ast.TGD) *Violation {
	vs := Violations(d, []ast.TGD{tau}, 1)
	if len(vs) == 0 {
		return nil
	}
	return &vs[0]
}

// Repair closes d under the tgds (no program rules), adding facts — with
// labeled nulls for existential variables — until every constraint holds
// or the budget runs out. It is the pure-tgd special case of the
// Section VIII chase. The returned Result reports completion.
func Repair(d *db.Database, tgds []ast.TGD, budget chase.Budget) (chase.Result, error) {
	return chase.Apply(ast.NewProgram(), tgds, d, budget)
}
