// Benchmarks regenerating the experiment suite E1–E10 of DESIGN.md, one
// bench family per experiment, plus the ablation benches for the design
// choices DESIGN.md §5 calls out. Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/equivopt"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/harness"
	"repro/internal/magic"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/preserve"
	"repro/internal/topdown"
	"repro/internal/workload"
)

// BenchmarkE1_WorkedExamples re-runs the complete worked-example regression
// of the paper (Examples 2–19).
func BenchmarkE1_WorkedExamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := harness.E1WorkedExamples()
		for _, row := range tab.Rows {
			if row[3] != "PASS" {
				b.Fatalf("%s failed", row[0])
			}
		}
	}
}

// BenchmarkE2_UniformContainment measures the Section VI decision procedure
// against growing layered programs.
func BenchmarkE2_UniformContainment(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 24} {
		p := workload.Layered(n)
		b.Run(fmt.Sprintf("layers-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := chase.UniformlyContains(p, p)
				if err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

// BenchmarkE3_MinimizeRule measures Fig. 1 with k injected redundant atoms.
func BenchmarkE3_MinimizeRule(b *testing.B) {
	base := workload.TransitiveClosure().Rules[1]
	for _, k := range []int{0, 1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(k) + 1))
		r := workload.InjectRedundantAtoms(base, k, rng)
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, trace, err := minimize.Rule(r, minimize.Options{})
				if err != nil || trace.AtomsRemoved() != k {
					b.Fatal(trace.AtomsRemoved(), err)
				}
			}
		})
	}
}

// BenchmarkE4_MinimizeProgram measures Fig. 2 with injected redundant
// rules.
func BenchmarkE4_MinimizeProgram(b *testing.B) {
	for _, k := range []int{0, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(k) + 11))
		p := workload.InjectRedundantRules(workload.TransitiveClosure(), k, rng)
		b.Run(fmt.Sprintf("rules-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				min, _, err := minimize.Program(p, minimize.Options{})
				if err != nil || len(min.Rules) != 2 {
					b.Fatal(len(min.Rules), err)
				}
			}
		})
	}
}

// BenchmarkE5_EvalSpeedup compares evaluation of the bloated Example 11
// program against its fully optimized form.
func BenchmarkE5_EvalSpeedup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bloated := workload.TransitiveClosureGuarded()
	bloated = bloated.ReplaceRule(1, workload.InjectRedundantAtoms(bloated.Rules[1], 2, rng))
	min, _, err := minimize.Program(bloated, minimize.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opt, _, err := equivopt.Optimize(min, equivopt.Options{})
	if err != nil {
		b.Fatal(err)
	}
	edbs := map[string]*db.Database{
		"chain-48":  workload.Chain("A", 48),
		"random-60": workload.RandomDigraph("A", 60, 120, 7),
		"grid-8x8":  workload.Grid("A", 8, 8),
	}
	for name, edb := range edbs {
		b.Run("bloated/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(bloated, edb, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("optimized/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(opt, edb, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_NaiveVsSemiNaive compares the two fixpoint strategies.
func BenchmarkE6_NaiveVsSemiNaive(b *testing.B) {
	p := workload.TransitiveClosure()
	for _, n := range []int{16, 32, 64} {
		edb := workload.Chain("A", n)
		b.Run(fmt.Sprintf("naive/chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(p, edb, eval.Options{Strategy: eval.Naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("seminaive/chain-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(p, edb, eval.Options{Strategy: eval.SemiNaive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_EquivOpt measures the full Sections X–XI pipeline.
func BenchmarkE7_EquivOpt(b *testing.B) {
	cases := map[string]*ast.Program{
		"ex11": workload.TransitiveClosureGuarded(),
		"ex19": workload.Example19Program(),
	}
	for name, p := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, removals, err := equivopt.Optimize(p, equivopt.Options{})
				if err != nil || len(removals) == 0 {
					b.Fatal(len(removals), err)
				}
			}
		})
	}
}

// BenchmarkE8_MagicComposition measures query answering: direct, magic, and
// magic over the minimized program.
func BenchmarkE8_MagicComposition(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := workload.Ancestor()
	bloated := p.ReplaceRule(1, workload.InjectRedundantAtoms(p.Rules[1], 2, rng))
	minimized, _, err := minimize.Program(bloated, minimize.Options{})
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Chain("Par", 128)
	query := ast.NewAtom("Anc", ast.IntTerm(122), ast.Var("y"))

	b.Run("direct-bloated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.DirectAnswer(bloated, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("magic-bloated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.Answer(bloated, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("magic-minimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.Answer(minimized, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9_EmbeddedChase measures the budgeted chase on the diverging
// embedded-tgd instance.
func BenchmarkE9_EmbeddedChase(b *testing.B) {
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	T := []ast.TGD{parser.MustParseTGD("A(x, y) -> A(y, w).")}
	r := parser.MustParseProgram(`Q(x) :- A(x, y), Z(x).`).Rules[0]
	for _, budget := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("budget-%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := chase.SATContainsRule(p, T, r, chase.Budget{MaxAtoms: budget, MaxRounds: budget})
				if err != nil || v != chase.Unknown {
					b.Fatal(v, err)
				}
			}
		})
	}
}

// BenchmarkE10_CQAblation compares the CQ homomorphism fast path against
// the frozen-body chase on non-recursive containment.
func BenchmarkE10_CQAblation(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(k)))
		r1 := randomCQRule(rng, k)
		r2 := randomCQRule(rng, k)
		q1, _ := cq.FromRule(r1)
		q2, _ := cq.FromRule(r2)
		b.Run(fmt.Sprintf("cq/k-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cq.Contained(q1, q2)
			}
		})
		b.Run(fmt.Sprintf("chase/k-%d", k), func(b *testing.B) {
			p := ast.NewProgram(r2)
			for i := 0; i < b.N; i++ {
				if _, err := chase.UniformlyContainsRule(p, r1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DeletionOrder measures Fig. 2 under source order vs
// shuffled consideration order (the paper: results may differ; cost may
// too).
func BenchmarkAblation_DeletionOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	p := workload.InjectRedundantRules(workload.TransitiveClosure(), 4, rng)
	p = workload.InjectRedundantAtomsProgram(p, 2, rng)
	b.Run("source-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := minimize.Program(p, minimize.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shuffled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shuffleRng := rand.New(rand.NewSource(int64(i)))
			if _, _, err := minimize.Program(p, minimize.Options{Rand: shuffleRng}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_JoinReorder measures the greedy join-order heuristic.
func BenchmarkAblation_JoinReorder(b *testing.B) {
	// A body written in a deliberately bad order: the selective atom last.
	p := parser.MustParseProgram(`
		T(x, w) :- A(x, y), B(y, z), C(z, w), S(x).
	`)
	edb := db.New()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		edb.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{ast.Int(int64(rng.Intn(40))), ast.Int(int64(rng.Intn(40)))}})
		edb.Add(ast.GroundAtom{Pred: "B", Args: []ast.Const{ast.Int(int64(rng.Intn(40))), ast.Int(int64(rng.Intn(40)))}})
		edb.Add(ast.GroundAtom{Pred: "C", Args: []ast.Const{ast.Int(int64(rng.Intn(40))), ast.Int(int64(rng.Intn(40)))}})
	}
	edb.Add(ast.GroundAtom{Pred: "S", Args: []ast.Const{ast.Int(1)}})
	for _, noReorder := range []bool{false, true} {
		name := "reorder-on"
		if noReorder {
			name = "reorder-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(p, edb, eval.Options{NoReorder: noReorder}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// randomCQRule mirrors the harness generator for E10.
func randomCQRule(rng *rand.Rand, k int) ast.Rule {
	vars := []string{"x", "y", "z", "u", "v", "w"}
	preds := []string{"A", "B"}
	body := make([]ast.Atom, k)
	for i := range body {
		body[i] = ast.NewAtom(preds[rng.Intn(len(preds))],
			ast.Var(vars[rng.Intn(len(vars))]),
			ast.Var(vars[rng.Intn(len(vars))]))
	}
	return ast.NewRule(ast.NewAtom("Q", body[0].Args[0]), body...)
}

// BenchmarkAblation_SupplementaryMagic compares the basic and supplementary
// magic rewritings on a long-bodied recursive rule, where supplementary
// predicates avoid recomputing shared body prefixes.
func BenchmarkAblation_SupplementaryMagic(b *testing.B) {
	p := parser.MustParseProgram(`
		P(x, z) :- E(x, z).
		P(x, z) :- P(x, a), E(a, b), E(b, c), E(c, d), P(d, z).
	`)
	edb := workload.Chain("E", 48)
	query := parser.MustParseAtom("P(0, y)")
	b.Run("basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.Answer(p, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("supplementary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.AnswerSupplementary(p, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_PrelimDepth measures the cost of probing deeper
// preliminary DBs in the Section X pipeline.
func BenchmarkAblation_PrelimDepth(b *testing.B) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		H(x) :- G(x, y).
		R(x, z) :- A(x, q), B(x, z).
		R(x, z) :- R(x, y), B(y, z), H(x).
	`)
	for _, depth := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := equivopt.Optimize(p, equivopt.Options{PrelimDepth: depth}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExplainProver measures provenance-tracking evaluation against
// plain evaluation.
func BenchmarkExplainProver(b *testing.B) {
	p := workload.TransitiveClosure()
	edb := workload.Chain("A", 32)
	b.Run("plain-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Eval(p, edb, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := explain.NewProver(p, edb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngines compares the four query-answering strategies on a bound
// ancestor query: full bottom-up + filter, basic magic, supplementary
// magic, and tabled top-down.
func BenchmarkEngines(b *testing.B) {
	p := workload.Ancestor()
	edb := workload.Chain("Par", 96)
	query := ast.NewAtom("Anc", ast.IntTerm(90), ast.Var("y"))
	b.Run("bottom-up-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.DirectAnswer(p, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.Answer(p, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("supplementary-magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.AnswerSupplementary(p, edb, query, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topdown-tabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := topdown.New(p, edb)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := eng.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalVsReEval measures insertion maintenance against full
// re-evaluation on a growing chain closure.
func BenchmarkIncrementalVsReEval(b *testing.B) {
	p := workload.TransitiveClosure()
	base := workload.Chain("A", 48)
	out, _, err := eval.Eval(p, base, eval.Options{})
	if err != nil {
		b.Fatal(err)
	}
	newFact := ast.GroundAtom{Pred: "A", Args: []ast.Const{ast.Int(200), ast.Int(201)}}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Incremental(p, out, []ast.GroundAtom{newFact}, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-re-eval", func(b *testing.B) {
		full := base.Clone()
		full.Add(newFact)
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Eval(p, full, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_IncrementalChurn measures fact-level maintenance
// (counting + DRed through eval.Maintained.Apply) against full re-evaluation
// on an authz-shaped workload: a recursive group-membership hierarchy feeding
// role grants and document ACLs, churned by small mixed assert/retract
// batches (a user leaves one group, another joins). The maintained arm
// materializes once and applies per-batch deltas; the re-eval arm recomputes
// the whole fixpoint per batch.
func BenchmarkAblation_IncrementalChurn(b *testing.B) {
	p := parser.MustParseProgram(`
		Member(u, g) :- Direct(u, g).
		Member(u, g) :- Member(u, h), Subgroup(h, g).
		HasRole(u, r) :- Member(u, g), Grant(g, r).
		CanRead(u, d) :- HasRole(u, r), Allows(r, d).
	`)
	const users, groups, roles, docs = 2000, 48, 3, 8
	group := func(g int) ast.Const { return ast.Int(int64(1000 + g)) }
	role := func(r int) ast.Const { return ast.Int(int64(2000 + r)) }
	doc := func(d int) ast.Const { return ast.Int(int64(3000 + d)) }
	var facts []ast.GroundAtom
	for u := 0; u < users; u++ {
		facts = append(facts, ast.GroundAtom{Pred: "Direct", Args: []ast.Const{ast.Int(int64(u)), group(u % groups)}})
	}
	for g := 0; g < groups-1; g++ {
		facts = append(facts, ast.GroundAtom{Pred: "Subgroup", Args: []ast.Const{group(g), group(g + 1)}})
	}
	for r := 0; r < roles; r++ {
		facts = append(facts, ast.GroundAtom{Pred: "Grant", Args: []ast.Const{group(groups - 1), role(r)}})
		for d := 0; d < docs; d++ {
			facts = append(facts, ast.GroundAtom{Pred: "Allows", Args: []ast.Const{role(r), doc(d)}})
		}
	}
	// The churn batch: user 7 leaves its group while a brand-new user joins
	// group 0; the inverse batch restores the base state, so alternating the
	// two keeps every iteration's work identical.
	leave := ast.GroundAtom{Pred: "Direct", Args: []ast.Const{ast.Int(7), group(7 % groups)}}
	join := ast.GroundAtom{Pred: "Direct", Args: []ast.Const{ast.Int(users), group(0)}}
	forward := eval.Delta{Assert: []ast.GroundAtom{join}, Retract: []ast.GroundAtom{leave}}
	backward := eval.Delta{Assert: []ast.GroundAtom{leave}, Retract: []ast.GroundAtom{join}}

	pr, err := eval.Prepare(p, eval.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("maintained", func(b *testing.B) {
		m, _, err := pr.Materialize(context.Background(), db.FromFacts(facts), eval.MaintainOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := forward
			if i%2 == 1 {
				d = backward
			}
			if _, _, err := m.Apply(context.Background(), d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-re-eval", func(b *testing.B) {
		base := db.FromFacts(facts)
		churned := db.FromFacts(append(append([]ast.GroundAtom(nil), facts...), join))
		churned.Remove(leave)
		churned.Compact()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			in := churned
			if i%2 == 1 {
				in = base
			}
			if _, _, err := pr.Eval(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_SCCOrder measures the SCC-ordered schedule against a
// single global fixpoint on a layered program.
func BenchmarkAblation_SCCOrder(b *testing.B) {
	p := workload.Layered(12)
	edb := workload.Chain("E", 40)
	b.Run("scc-ordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Eval(p, edb, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-fixpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Eval(p, edb, eval.Options{NoSCCOrder: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_CompiledEval measures the slot-compiled rule evaluator
// against the generic binding-map matcher.
func BenchmarkAblation_CompiledEval(b *testing.B) {
	p := workload.TransitiveClosure()
	edb := workload.RandomDigraph("A", 60, 120, 7)
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Eval(p, edb, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eval.Eval(p, edb, eval.Options{NoCompile: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_ParallelEval measures round-parallel evaluation.
func BenchmarkAblation_ParallelEval(b *testing.B) {
	p := workload.TransitiveClosure()
	edb := workload.RandomDigraph("A", 90, 180, 7)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(p, edb, eval.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ShardedEval measures the sharded round executor against
// the unsharded kernel at shard counts 1/2/4/8. Arms:
//
//   - large-tc: right-linear transitive closure (the paper's Example 4) of a
//     large sparse random digraph — a deep recursion (~90 rounds) whose
//     per-round deltas the sharded executor enumerates delta-first over the
//     partition slices, where the sequential plan order rescans the outer
//     relation against the delta window every round. This is the arm the
//     sharded kernel targets.
//   - dense-tc: doubled-rule transitive closure of a dense random digraph —
//     duplicate-dominated (~159 re-derivations per committed fact), so both
//     executors are bound by the same dedup probes; sharding is expected to
//     roughly break even here, and the arm exists to keep that honest.
//   - wide-join: a wide materialized non-recursive join (NoStream forces the
//     materializing kernel the shards split).
//
// Workers tracks the shard count so multicore machines overlap the shard
// tasks; the single-core win comes from the sharded kernel itself.
func BenchmarkAblation_ShardedEval(b *testing.B) {
	rltc := workload.TransitiveClosureLinear()
	rltcEDB := workload.RandomDigraph("A", 10000, 10500, 7)
	tc := workload.TransitiveClosure()
	tcEDB := workload.RandomDigraph("A", 220, 500, 7)
	join := parser.MustParseProgram(`
		T(x, w) :- A(x, y), B(y, z), C(z, w), S(x).
	`)
	joinEDB := db.New()
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 900; i++ {
		joinEDB.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{ast.Int(int64(rng.Intn(60))), ast.Int(int64(rng.Intn(60)))}})
		joinEDB.Add(ast.GroundAtom{Pred: "B", Args: []ast.Const{ast.Int(int64(rng.Intn(60))), ast.Int(int64(rng.Intn(60)))}})
		joinEDB.Add(ast.GroundAtom{Pred: "C", Args: []ast.Const{ast.Int(int64(rng.Intn(60))), ast.Int(int64(rng.Intn(60)))}})
	}
	for i := int64(0); i < 12; i++ {
		joinEDB.Add(ast.GroundAtom{Pred: "S", Args: []ast.Const{ast.Int(i)}})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		opts := eval.Options{Shards: shards, Workers: shards}
		b.Run(fmt.Sprintf("large-tc/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(rltc, rltcEDB, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dense-tc/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(tc, tcEDB, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("wide-join/shards=%d", shards), func(b *testing.B) {
			joinOpts := opts
			joinOpts.NoStream = true
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(join, joinEDB, joinOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// layeredUnfolding returns the full unfolding of workload.Layered(n)'s top
// predicate down to the EDB: Pn(x0, xn) :- E(x0, x1), ..., E(xn-1, xn).
// Its frozen body is a pure-EDB chain, so goal-directed evaluation of the
// layered program over it is the archetypal frozen-body containment query.
func layeredUnfolding(n int) ast.Rule {
	var sb strings.Builder
	fmt.Fprintf(&sb, "P%d(x0, x%d) :- ", n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "E(x%d, x%d)", i, i+1)
	}
	sb.WriteString(".")
	return parser.MustParseProgram(sb.String()).Rules[0]
}

// BenchmarkAblation_StreamingEval measures the streaming operator pipeline
// against the materializing kernel on its two target workloads: a wide
// non-recursive join (one stratum, four body atoms) and a goal-directed
// frozen-body containment query (many single-rule strata, emit-path early
// stop). Both programs are non-recursive, so the planner streams them by
// default; NoStream forces the delta-window materializing kernel.
func BenchmarkAblation_StreamingEval(b *testing.B) {
	join := parser.MustParseProgram(`
		T(x, w) :- A(x, y), B(y, z), C(z, w), S(x).
	`)
	joinEDB := db.New()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 600; i++ {
		joinEDB.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{ast.Int(int64(rng.Intn(50))), ast.Int(int64(rng.Intn(50)))}})
		joinEDB.Add(ast.GroundAtom{Pred: "B", Args: []ast.Const{ast.Int(int64(rng.Intn(50))), ast.Int(int64(rng.Intn(50)))}})
		joinEDB.Add(ast.GroundAtom{Pred: "C", Args: []ast.Const{ast.Int(int64(rng.Intn(50))), ast.Int(int64(rng.Intn(50)))}})
	}
	for i := int64(0); i < 10; i++ {
		joinEDB.Add(ast.GroundAtom{Pred: "S", Args: []ast.Const{ast.Int(i)}})
	}
	layered := workload.Layered(12)
	goal, frozen := chase.FreezeRule(layeredUnfolding(12))
	for _, noStream := range []bool{false, true} {
		name := "stream"
		if noStream {
			name = "materialize"
		}
		b.Run("wide-join/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := eval.Eval(join, joinEDB, eval.Options{NoStream: noStream}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("containment-goal/"+name, func(b *testing.B) {
			pr, err := eval.Prepare(layered, eval.Options{NoStream: noStream})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			// EvalGoalProv is what chase.Checker.ContainsRule issues per
			// verdict: goal-directed, budget-free, provenance-recording.
			for i := 0; i < b.N; i++ {
				var prov eval.RuleSet
				_, reached, _, err := pr.EvalGoalProv(frozen, &goal, 0, &prov)
				if err != nil || !reached {
					b.Fatal(reached, err)
				}
			}
		})
	}
}

// BenchmarkStorageKernel measures the db storage layer directly: the
// insert/dedup path (arena append + open-addressing table) and the
// index-probe path (hash probe + chain walk), the two operations every
// fixpoint round multiplies. Both must stay allocation-free per operation.
func BenchmarkStorageKernel(b *testing.B) {
	const n = 10000
	mkDB := func() *db.Database {
		d := db.New()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < n; i++ {
			d.AddTuple("R", []ast.Const{ast.Int(int64(rng.Intn(500))), ast.Int(int64(rng.Intn(500)))})
		}
		return d
	}
	b.Run("insert-dedup", func(b *testing.B) {
		args := []ast.Const{0, 0}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := db.New()
			rng := rand.New(rand.NewSource(3))
			b.StartTimer()
			for j := 0; j < n; j++ {
				args[0], args[1] = ast.Int(int64(rng.Intn(500))), ast.Int(int64(rng.Intn(500)))
				d.AddTuple("R", args)
			}
		}
	})
	b.Run("probe-hit", func(b *testing.B) {
		d := mkDB()
		rel := d.Relation("R")
		d.EnsureIndex("R", []int{0})
		cols := []int{0}
		key := []ast.Const{0}
		b.ResetTimer()
		var total int
		for i := 0; i < b.N; i++ {
			key[0] = ast.Int(int64(i % 500))
			it := rel.ProbeIter(cols, key, d.Round())
			for _, ok := it.Next(); ok; _, ok = it.Next() {
				total++
			}
		}
		_ = total
	})
	b.Run("lookup-full", func(b *testing.B) {
		d := mkDB()
		rel := d.Relation("R")
		rng := rand.New(rand.NewSource(4))
		key := []ast.Const{0, 0}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key[0], key[1] = ast.Int(int64(rng.Intn(500))), ast.Int(int64(rng.Intn(500)))
			rel.LookupID(key)
		}
	})
}

// BenchmarkStratifiedMagic measures the stratified magic pipeline against
// plain bottom-up evaluation on a dead-code-detection query.
func BenchmarkStratifiedMagic(b *testing.B) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Dead(x) :- Node(x), !Reach(x).
	`)
	edb := workload.Chain("E", 64)
	edb.Add(ast.GroundAtom{Pred: "Src", Args: []ast.Const{ast.Int(0)}})
	for i := int64(0); i <= 64; i++ {
		edb.Add(ast.GroundAtom{Pred: "Node", Args: []ast.Const{ast.Int(i)}})
	}
	// The query is all-free, so magic cannot prune: this bench records the
	// OVERHEAD of the stratified pipeline (materialization + rewriting)
	// relative to plain bottom-up — the price of uniformity, not a win.
	q := ast.NewAtom("Dead", ast.Var("x"))
	b.Run("stratified-magic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.AnswerStratified(p, edb, q, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bottom-up", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := magic.DirectAnswer(p, edb, q, eval.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_PreserveDerive measures the tentpole of the preservation
// layer: carrying a warmed session (per-depth unfoldings, combination
// options, prepared plans) across an accepted one-rule weakening via
// Session.Derive, against rebuilding the session from scratch, with the same
// depth-3 probes answered afterwards in both arms. Prepared plans are served
// from a shared cache in both arms; the gap is the re-unfolding and option
// rebuilding that Derive patches instead.
func BenchmarkAblation_PreserveDerive(b *testing.B) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), B(z, z).
		G(x, z) :- G(x, y), G(y, z).
		H(x, z) :- G(x, z), B(x, z).
		H(x, z) :- H(x, y), A(y, z).
	`)
	const ruleIdx = 2
	nr := p.Rules[ruleIdx].WithoutBodyAtom(1) // H(x, z) :- G(x, z).
	// The probe tgd is extensional-only, so its combination walk is trivial:
	// each arm's cost is dominated by building the depth-3 session state the
	// probe forces (unfoldings, prepared plans, option tables), which is
	// exactly what Derive patches and a fresh session recomputes.
	tgds := []ast.TGD{parser.MustParseTGD("A(x, y) -> B(x, w).")}
	probe := func(b *testing.B, s *preserve.Session) {
		opts := preserve.Options{Depth: 3, Budget: chase.Budget{MaxAtoms: 200, MaxRounds: 6}}
		if _, _, err := s.Check(tgds, opts); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.CheckPreliminary(tgds, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("derive", func(b *testing.B) {
		base, err := preserve.NewSessionCache(p, eval.NewPlanCache(0))
		if err != nil {
			b.Fatal(err)
		}
		probe(b, base) // warm the depth entries Derive patches
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ns, err := base.Derive(ruleIdx, &nr)
			if err != nil {
				b.Fatal(err)
			}
			probe(b, ns)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		cache := eval.NewPlanCache(0)
		base, err := preserve.NewSessionCache(p, cache)
		if err != nil {
			b.Fatal(err)
		}
		probe(b, base)
		np := p.ReplaceRule(ruleIdx, nr)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ns, err := preserve.NewSessionCache(np, cache)
			if err != nil {
				b.Fatal(err)
			}
			probe(b, ns)
		}
	})
}

// BenchmarkServiceWarmVsCold measures what the session layer buys a long-
// running server: "warm" reuses one core.Session whose plan was prepared
// once, "cold" rebuilds a session with an isolated plan cache on every
// request — the per-request cost an unsessioned server would pay. The
// program is prepare-heavy (a wide layered rule set) over a small EDB, the
// shape where session reuse matters most.
func BenchmarkServiceWarmVsCold(b *testing.B) {
	var src strings.Builder
	src.WriteString("T0(x, y) :- E(x, y).\n")
	for i := 1; i <= 24; i++ {
		fmt.Fprintf(&src, "T%d(x, z) :- T%d(x, y), T%d(y, z).\n", i, i-1, i-1)
		fmt.Fprintf(&src, "S%d(x, y) :- T%d(x, y), E(y, y).\n", i, i)
	}
	prog, err := core.ParseProgram(src.String())
	if err != nil {
		b.Fatal(err)
	}
	edb := workload.Chain("E", 8)
	ctx := context.Background()

	b.Run("warm", func(b *testing.B) {
		sess, err := core.NewSession(prog, core.SessionOptions{PlanCache: core.NewPlanCache(4)})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sess.Eval(ctx, edb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess, err := core.NewSession(prog, core.SessionOptions{PlanCache: core.NewPlanCache(4)})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sess.Eval(ctx, edb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_TerminationFastPath measures what the termination
// classifier buys the chase on a full (existential-free) tgd set: the
// classified arm collapses the rule/tgd round alternation into one prepared
// fixpoint, while the raw-budget arm (classification disabled) replays the
// staged pipeline round by round under the default budget.
func BenchmarkAblation_TerminationFastPath(b *testing.B) {
	const stages = 6
	p := parser.MustParseProgram(fmt.Sprintf(`T(x, z) :- S%d(x, y), S%d(y, z).`, stages, stages))
	var tgds []ast.TGD
	for i := 0; i < stages; i++ {
		tgds = append(tgds, parser.MustParseTGD(fmt.Sprintf("S%d(x, y) -> S%d(x, y).", i, i+1)))
	}
	rng := rand.New(rand.NewSource(11))
	base := db.New()
	for i := 0; i < 400; i++ {
		base.Add(ast.GroundAtom{Pred: "S0", Args: []ast.Const{
			ast.Int(int64(rng.Intn(80))), ast.Int(int64(rng.Intn(80)))}})
	}
	snap := base.Freeze()

	run := func(b *testing.B, c *chase.Checker) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			res, err := c.Apply(tgds, snap.Thaw(), chase.Budget{})
			if err != nil || !res.Complete {
				b.Fatalf("chase: complete=%v err=%v", res.Complete, err)
			}
		}
	}
	b.Run("classified", func(b *testing.B) {
		c, err := chase.NewChecker(p)
		if err != nil {
			b.Fatal(err)
		}
		run(b, c)
	})
	b.Run("raw-budget", func(b *testing.B) {
		c, err := chase.NewChecker(p)
		if err != nil {
			b.Fatal(err)
		}
		c.DisableTerminationAnalysis()
		run(b, c)
	})
}
