// Magic sets × minimization: the composition the paper's introduction
// promises — "removing redundant parts can only speed up the [magic set]
// computation". An ancestor query with a bound argument is answered three
// ways: full evaluation, magic rewriting, and magic after minimization.
//
// Run with: go run ./examples/magic
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// Ancestor with two injected redundant atoms in its recursive rule —
	// the kind of bloat a generated or hand-evolved program accumulates.
	base := workload.Ancestor()
	rng := rand.New(rand.NewSource(2))
	bloated := base.ReplaceRule(1, workload.InjectRedundantAtoms(base.Rules[1], 2, rng))
	fmt.Println("bloated program:")
	fmt.Print(bloated)

	minimized, trace, err := core.MinimizeProgram(bloated, core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 2 removed %d atoms:\n", trace.AtomsRemoved())
	fmt.Print(minimized)

	// A deep chain and a query bound on the first argument.
	const n = 200
	edb := workload.Chain("Par", n)
	query := ast.NewAtom("Anc", ast.IntTerm(n-6), ast.Var("y"))
	fmt.Printf("\nquery: %v over a %d-chain\n\n", query, n)

	// The magic-sets rewriting itself.
	rw, err := core.MagicRewrite(minimized, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("magic-rewritten program:")
	fmt.Print(rw.Program)
	fmt.Printf("seed: %v\n\n", rw.Seed)

	type result struct {
		name    string
		answers int
		derived int
		firings int
	}
	var results []result

	directAns, directStats, err := core.DirectAnswer(bloated, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"full evaluation (bloated)", len(directAns), directStats.DerivedFacts, directStats.Eval.Firings})

	magicAns, magicStats, err := core.MagicAnswer(bloated, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"magic (bloated)", len(magicAns), magicStats.DerivedFacts, magicStats.Eval.Firings})

	minAns, minStats, err := core.MagicAnswer(minimized, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, result{"magic (minimized)", len(minAns), minStats.DerivedFacts, minStats.Eval.Firings})

	fmt.Printf("%-28s %8s %14s %10s\n", "mode", "answers", "derived facts", "firings")
	for _, r := range results {
		fmt.Printf("%-28s %8d %14d %10d\n", r.name, r.answers, r.derived, r.firings)
	}
	if len(directAns) != len(magicAns) || len(magicAns) != len(minAns) {
		log.Fatal("answer sets disagree!")
	}
	fmt.Println("\nall three modes return the same answers; magic touches a fraction")
	fmt.Println("of the facts, and minimization shrinks the joins further.")
}
