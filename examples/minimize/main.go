// Minimization under uniform equivalence: the Figs. 1–2 algorithms on the
// paper's Example 7/8 rule and on a program with redundant rules.
//
// Run with: go run ./examples/minimize
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// --- Fig. 1 on the Example 7 rule -----------------------------------
	p1, err := core.ParseProgram(`
		G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	minRule, trace, err := core.MinimizeRule(p1.Rules[0], core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 7/8 — minimizing a single rule (Fig. 1):")
	fmt.Printf("  before: %v\n", p1.Rules[0])
	fmt.Printf("  after:  %v\n", minRule)
	for _, ar := range trace.AtomRemovals {
		fmt.Printf("  removed atom %v (uniform equivalence preserved)\n", ar.Atom)
	}

	// --- Fig. 2 on a program with redundancy at both levels -------------
	p2, err := core.ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		G(x, z) :- A(x, y), G(y, z).       % redundant rule
		H(x)    :- G(x, y), G(x, w).       % redundant atom G(x,w)
	`)
	if err != nil {
		log.Fatal(err)
	}
	minProg, trace2, err := core.MinimizeProgram(p2, core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFig. 2 — minimizing a whole program:")
	fmt.Println("  before:")
	fmt.Print(indent(p2.String()))
	fmt.Println("  after:")
	fmt.Print(indent(minProg.String()))
	fmt.Printf("  removed %d atoms and %d rules\n", trace2.AtomsRemoved(), trace2.RulesRemoved())

	// The result is uniformly equivalent to the original — verify it.
	eq, err := core.UniformlyEquivalent(p2, minProg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  uniformly equivalent to the original: %v\n", eq)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
