// Optimization under plain equivalence: the Sections X–XI pipeline on the
// paper's Examples 11/18/19 — redundancies invisible to uniform
// equivalence, witnessed by tuple-generating dependencies.
//
// Run with: go run ./examples/equivalence
package main

import (
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// Example 11/18: transitive closure whose recursive rule carries the
	// guard A(y,w).
	p1 := workload.TransitiveClosureGuarded()
	fmt.Println("P1 (Example 11):")
	fmt.Print(p1)

	// The guard is NOT redundant under uniform equivalence...
	min, trace, err := core.MinimizeProgram(p1, core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 2 minimization removes %d atoms (uniform equivalence is too weak here)\n",
		trace.AtomsRemoved())
	_ = min

	// ... but the Section X conditions hold for T = {G(x,z) -> A(x,w)}:
	tgd, err := core.ParseTGD("G(x, z) -> A(x, w).")
	if err != nil {
		log.Fatal(err)
	}
	p2 := workload.TransitiveClosure()
	v1, err := core.SATModelsContained(p1, []core.TGD{tgd}, p2, core.Budget{})
	if err != nil {
		log.Fatal(err)
	}
	v2, _, err := core.PreserveCheck(p1, []core.TGD{tgd}, core.PreserveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	v3, _, err := core.PreserveCheckPreliminary(p1, []core.TGD{tgd}, core.PreserveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith T = {%v}:\n", tgd)
	fmt.Printf("  (1)  SAT(T) ∩ M(P1) ⊆ M(P2):        %v\n", v1)
	fmt.Printf("  (2)  P1 preserves T non-recursively:  %v\n", v2)
	fmt.Printf("  (3') preliminary DB satisfies T:      %v\n", v3)

	// The automated heuristic finds the tgd and applies the deletion.
	opt, removals, err := core.EquivOptimize(p1, core.EquivOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nautomated Section XI optimization:")
	for _, r := range removals {
		fmt.Printf("  removed %v from rule %d via %v\n", r.Atoms, r.RuleIndex, r.TGD)
	}
	fmt.Println("optimized program:")
	fmt.Print(opt)

	// Sanity: the two programs agree on a concrete EDB even though they are
	// not uniformly equivalent.
	edb := workload.Chain("A", 6)
	o1, _, _ := core.Eval(p1, edb, core.EvalOptions{})
	o2, _, _ := core.Eval(opt, edb, core.EvalOptions{})
	fmt.Printf("\nsame output on a 6-chain: %v\n", o1.Equal(o2))
	eq, _ := chase.UniformlyEquivalent(p1, opt)
	fmt.Printf("uniformly equivalent: %v (as the paper predicts)\n", eq)

	// Example 19, with a two-atom deletion.
	fmt.Println("\nExample 19:")
	p19 := workload.Example19Program()
	fmt.Print(p19)
	opt19, removals19, err := core.EquivOptimize(p19, core.EquivOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range removals19 {
		fmt.Printf("  removed %v via %v\n", r.Atoms, r.TGD)
	}
	fmt.Println("optimized:")
	fmt.Print(opt19)
}
