// Andersen-style points-to analysis — a realistic program-analysis
// workload of the kind modern Datalog engines are built for, exercising
// the library end to end: a four-rule inclusion-based analysis is bloated
// with a redundant atom, minimized with Fig. 2, evaluated, and then asked
// a targeted question through the magic-sets rewriting.
//
// Run with: go run ./examples/pointsto
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
)

func main() {
	// The classic Andersen constraints:
	//   p = &a      AddrOf(p, a)      → PointsTo(p, a)
	//   p = q       Assign(p, q)      → PointsTo(p, x) ⊇ PointsTo(q, x)
	//   p = *q      Load(p, q)        → p points to whatever *q points to
	//   *p = q      Store(p, q)       → whatever p points to points to q's targets
	// The second rule carries a redundant duplicate of Assign — the kind of
	// bloat machine-generated constraint systems accumulate.
	res, err := parser.Parse(`
		PointsTo(p, a) :- AddrOf(p, a).
		PointsTo(p, x) :- Assign(p, q), PointsTo(q, x), Assign(p, r).
		PointsTo(p, x) :- Load(p, q), PointsTo(q, r), PointsTo(r, x).
		PointsTo(r, x) :- Store(p, q), PointsTo(p, r), PointsTo(q, x).

		% a tiny program:
		%   v1 = &h1; v2 = &h2; v3 = v1; *v1 = v2; v4 = *v3;
		AddrOf(1, 100).
		AddrOf(2, 200).
		Assign(3, 1).
		Store(1, 2).
		Load(4, 3).
	`)
	if err != nil {
		log.Fatal(err)
	}
	p := res.Program
	fmt.Println("constraint rules (bloated):")
	fmt.Print(p)

	min, trace, err := core.MinimizeProgram(p, core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 2 removed %d redundant atom(s):\n", trace.AtomsRemoved())
	fmt.Print(min)

	edb := core.FromFacts(res.Facts)
	out, stats, err := core.Eval(min, edb, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull analysis (%d facts, %d rounds):\n", out.Len(), stats.Rounds)
	for _, f := range out.Facts() {
		if f.Pred == "PointsTo" {
			fmt.Printf("  %v\n", f)
		}
	}

	// Targeted query via magic sets: what does v4 point to? Only the
	// relevant part of the heap model is explored.
	query := ast.NewAtom("PointsTo", ast.IntTerm(4), ast.Var("x"))
	magicAns, magicStats, err := core.MagicAnswer(min, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	directAns, directStats, err := core.DirectAnswer(min, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npoints-to set of v4 (magic: %d derived facts; direct: %d):\n",
		magicStats.DerivedFacts, directStats.DerivedFacts)
	for _, t := range magicAns {
		fmt.Printf("  v4 -> %v\n", t[1])
	}
	if len(magicAns) != len(directAns) {
		log.Fatal("magic and direct disagree!")
	}
}
