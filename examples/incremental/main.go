// Incremental view maintenance — monotone Datalog means insertions can be
// propagated from the new facts alone instead of recomputing the closure
// (the monotonicity the paper's Section X argument leans on, turned into a
// feature). A link-graph reachability view is maintained live while edges
// stream in.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	p, err := core.ParseProgram(`
		Reach(x, y) :- Link(x, y).
		Reach(x, z) :- Reach(x, y), Link(y, z).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Initial graph: a 30-node chain.
	edb := workload.Chain("Link", 30)
	view, stats, err := core.Eval(p, edb, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial view: %d facts (%d firings)\n", view.Len(), stats.Firings)

	// Stream in edges one at a time, maintaining the view incrementally.
	inserts := []core.GroundAtom{
		{Pred: "Link", Args: []core.Const{ast.Int(100), ast.Int(101)}}, // disconnected
		{Pred: "Link", Args: []core.Const{ast.Int(30), ast.Int(100)}},  // bridge
		{Pred: "Link", Args: []core.Const{ast.Int(101), ast.Int(0)}},   // closes a cycle
	}
	for _, ins := range inserts {
		updated, incStats, err := core.Incremental(p, view, []core.GroundAtom{ins}, core.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("insert %v: +%d facts with %d firings (view now %d facts)\n",
			ins, updated.Len()-view.Len()-1, incStats.Firings, updated.Len())
		view = updated
	}

	// Cross-check against recomputation from scratch.
	full := edb.Clone()
	for _, ins := range inserts {
		full.Add(ins)
	}
	fresh, freshStats, err := core.Eval(p, full, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrom-scratch recomputation: %d facts (%d firings)\n", fresh.Len(), freshStats.Firings)
	fmt.Printf("incremental view matches: %v\n", fresh.Equal(view))
}
