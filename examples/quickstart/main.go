// Quickstart: parse a Datalog program and its facts, evaluate it bottom-up,
// and query the result — the Example 1/2 session from the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
)

func main() {
	// Example 1's transitive-closure program over the Example 2 EDB.
	res, err := core.Parse(`
		% G is the transitive closure of A.
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).

		A(1, 2). A(1, 4). A(4, 1).
	`)
	if err != nil {
		log.Fatal(err)
	}

	edb := core.FromFacts(res.Facts)
	out, stats, err := core.Eval(res.Program, edb, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("program:")
	fmt.Print(res.Program)
	fmt.Printf("\noutput DB (%d facts, %d fixpoint rounds):\n", out.Len(), stats.Rounds)
	fmt.Print(out)

	// Point query: which nodes does 4 reach?
	fmt.Println("\nnodes reachable from 4:")
	b := ast.Binding{}
	query := ast.NewAtom("G", ast.IntTerm(4), ast.Var("y"))
	for _, f := range out.Facts() {
		if _, ok := query.MatchGround(f.Pred, f.Args, b); ok {
			fmt.Printf("  %v\n", f)
			delete(b, "y")
		}
	}

	// The paper's uniform semantics: feed an IDB fact as input (Example 3).
	in2 := core.NewDatabase()
	in2.Add(ast.NewGroundAtom("A", ast.Int(1), ast.Int(2)))
	in2.Add(ast.NewGroundAtom("G", ast.Int(2), ast.Int(5)))
	out2, _, err := core.Eval(res.Program, in2, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith an initial IDB fact G(2,5) the program still closes transitively:")
	fmt.Print(out2)
}
