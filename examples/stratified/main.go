// Stratified negation — the extension the paper's conclusion announces
// ("the results on uniform containment and minimization can be extended to
// Datalog programs with stratified negation"). A reachability analysis
// with negation is evaluated stratum by stratum, minimized with the
// stratified Fig. 2 extension, and a derived fact is explained with a
// derivation tree.
//
// Run with: go run ./examples/stratified
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/minimize"
	"repro/internal/parser"
)

func main() {
	res, err := parser.Parse(`
		% Which services are reachable from the entry point, and which are
		% dead? The Dead rule needs negation; E(x,w) in the second rule is
		% redundant bloat.
		Reach(x) :- Entry(x).
		Reach(y) :- Reach(x), E(x, y), E(x, w).
		Dead(x)  :- Service(x), !Reach(x).

		Entry(1).
		E(1, 2). E(2, 3). E(4, 5).
		Service(1). Service(2). Service(3). Service(4). Service(5).
	`)
	if err != nil {
		log.Fatal(err)
	}
	p := res.Program

	strata, err := depgraph.Strata(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strata (negation forces Dead above Reach):")
	for i, s := range strata {
		fmt.Printf("  stratum %d: %v\n", i, s)
	}

	// Minimize with the stratified extension: the redundant E(x,w) goes.
	min, trace, err := minimize.StratifiedProgram(p, minimize.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstratified minimization removed %d atom(s):\n", trace.AtomsRemoved())
	fmt.Print(min)

	// Evaluate and report.
	edb := db.FromFacts(res.Facts)
	out, _, err := eval.Eval(min, edb, eval.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndead services:")
	for _, f := range out.Facts() {
		if f.Pred == "Dead" {
			fmt.Printf("  %v\n", f)
		}
	}

	// Explain a negative finding: why is service 5 dead? The proof shows
	// the positive premise; the negation check is implicit in the rule.
	prover, err := explain.NewProver(min, edb)
	if err != nil {
		log.Fatal(err)
	}
	d, ok := prover.Explain(ast.NewGroundAtom("Dead", ast.Int(5)))
	if !ok {
		log.Fatal("Dead(5) not derived")
	}
	fmt.Println("\nwhy Dead(5):")
	fmt.Print(d.Format(min, res.Symbols))
}
