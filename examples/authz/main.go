// Relationship-based authorization — group membership, role inheritance,
// and document permissions as a recursive Datalog program with symbolic
// constants, answered three ways (bottom-up, magic sets, tabled top-down)
// and explained with derivation trees. This is the "all answers over a
// database" setting the paper's introduction frames: authorization checks
// are bound queries, so goal-directed evaluation and minimization both pay.
//
// Run with: go run ./examples/authz
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/explain"
	"repro/internal/topdown"
)

func main() {
	res, err := core.Parse(`
		% Group membership is transitive through subgroups.
		Member(u, g) :- Direct(u, g).
		Member(u, g) :- Member(u, h), Subgroup(h, g).

		% A role grant to a group reaches all members; CanRead carries a
		% redundant duplicate of Grant — bloat for the minimizer.
		HasRole(u, r) :- Member(u, g), Grant(g, r), Grant(g, r).
		CanRead(u, d) :- HasRole(u, r), Allows(r, d).

		Direct("ann", "eng").
		Direct("bob", "ops").
		Subgroup("eng", "staff").
		Subgroup("ops", "staff").
		Grant("staff", "viewer").
		Grant("eng", "editor").
		Allows("viewer", "handbook").
		Allows("editor", "designdoc").
	`)
	if err != nil {
		log.Fatal(err)
	}
	p, syms := res.Program, res.Symbols

	min, trace, err := core.MinimizeProgram(p, core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 2 removed %d duplicate atom(s) from the policy\n\n", trace.AtomsRemoved())

	edb := core.FromFacts(res.Facts)
	ann, _ := syms.Lookup("ann")
	query := ast.NewAtom("CanRead", ast.Con(ann), ast.Var("d"))

	// Bottom-up + filter.
	direct, directStats, err := core.DirectAnswer(min, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Magic sets.
	magicAns, magicStats, err := core.MagicAnswer(min, edb, query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Tabled top-down.
	eng, err := topdown.New(min, edb)
	if err != nil {
		log.Fatal(err)
	}
	tdAns, tdStats, err := eng.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("what can ann read?")
	for _, t := range direct {
		fmt.Printf("  %s\n", ast.GroundAtom{Pred: "CanRead", Args: t}.Format(syms))
	}
	fmt.Printf("\nwork: bottom-up derived %d facts; magic %d; top-down %d answers across %d subgoals\n",
		directStats.DerivedFacts, magicStats.DerivedFacts, tdStats.Answers, tdStats.Subgoals)
	if len(magicAns) != len(direct) || len(tdAns) != len(direct) {
		log.Fatal("engines disagree!")
	}

	// Why can ann read the design doc?
	docs, _ := syms.Lookup("designdoc")
	prover, err := explain.NewProver(min, edb)
	if err != nil {
		log.Fatal(err)
	}
	d, ok := prover.Explain(ast.NewGroundAtom("CanRead", ann, docs))
	if !ok {
		log.Fatal("CanRead(ann, designdoc) not derivable")
	}
	fmt.Println("\nwhy CanRead(ann, designdoc):")
	fmt.Print(d.Format(min, syms))
}
